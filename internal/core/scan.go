package core

import (
	"bytes"

	"repro/internal/value"
)

// KV is one key-value pair returned by GetRange.
type KV struct {
	Key   []byte
	Value *value.Value
}

// Scan visits keys greater than or equal to start in lexicographic order,
// calling fn for each until fn returns false or the keys are exhausted.
// Like the paper's getrange (§3), scans are not atomic with respect to
// concurrent inserts and removes: each border node is read with version
// validation, but the overall traversal observes a sequence of consistent
// per-node snapshots.
//
// The key passed to fn is a fresh copy the callback may retain.
func (t *Tree) Scan(start []byte, fn func(key []byte, v *value.Value) bool) {
	t.scanLayer(t.rootHeader(), start, true, nil, nil, fn)
}

// ScanInto is Scan with a caller-provided key buffer: the key passed to fn
// aliases buf, is valid only during the callback, and must be copied if
// retained. It returns the (possibly grown) buffer for reuse, so a caller
// that scans repeatedly with the same buffer performs no per-key allocations
// for key assembly.
func (t *Tree) ScanInto(start []byte, buf []byte, fn func(key []byte, v *value.Value) bool) []byte {
	t.scanLayer(t.rootHeader(), start, true, nil, &buf, fn)
	return buf
}

// GetRange returns up to n key-value pairs starting with the first key at or
// after start (§3: getrange, also called "scan").
func (t *Tree) GetRange(start []byte, n int) []KV {
	if n <= 0 {
		return nil
	}
	out := make([]KV, 0, n)
	t.Scan(start, func(k []byte, v *value.Value) bool {
		out = append(out, KV{Key: k, Value: v})
		return len(out) < n
	})
	return out
}

// scanEntry is a validated snapshot of one border-node slot.
type scanEntry struct {
	rem     []byte // remaining-key bytes within this layer (slice [+suffix])
	isLayer bool
	lv      *value.Value
	layer   *nodeHeader
}

// scanLayer walks one trie layer's border-node list from the node containing
// resume, emitting entries and recursing into deeper layers. resume/inclusive
// bound the remaining-key space: entries < resume (or == resume when not
// inclusive) are skipped. prefix holds the key bytes consumed by outer
// layers. When kbuf is non-nil, emitted keys are assembled into *kbuf and
// are valid only during fn (ScanInto); when nil, each key is a fresh copy.
// Returns false if fn aborted the scan.
func (t *Tree) scanLayer(root *nodeHeader, resume []byte, inclusive bool, prefix []byte, kbuf *[]byte, fn func([]byte, *value.Value) bool) bool {
	n, v := t.findBorder(root, keySlice(resume))
	var ents []scanEntry
	for {
		if isDeleted(v) {
			// Node removed mid-scan: re-find the resume point.
			n, v = t.findBorder(root, keySlice(resume))
			continue
		}
		// Snapshot the node's live entries, then validate the version; on
		// any change re-read. keylen is read on both sides of lv so a layer
		// transition (§4.6.3, no version change) cannot tear the union.
		ents = ents[:0]
		ok := true
		perm := n.perm()
		cnt := perm.count()
		for r := 0; r < cnt && ok; r++ {
			slot := perm.slot(r)
			kl := n.keylen[slot].Load()
			lvp := n.loadLV(slot)
			var suf []byte
			if kl == klSuffix {
				if sp := n.suffix[slot].Load(); sp != nil {
					suf = *sp
				}
			}
			if kl2 := n.keylen[slot].Load(); kl2 != kl || kl == klUnstable {
				ok = false
				break
			}
			ks := n.keyslice[slot].Load()
			var e scanEntry
			switch kl {
			case klLayer:
				e = scanEntry{rem: sliceBytes(ks, 8), isLayer: true, layer: (*nodeHeader)(lvp)}
			case klSuffix:
				rem := appendSliceBytes(make([]byte, 0, 8+len(suf)), ks, 8)
				e = scanEntry{rem: append(rem, suf...), lv: (*value.Value)(lvp)}
			default:
				e = scanEntry{rem: sliceBytes(ks, int(kl)), lv: (*value.Value)(lvp)}
			}
			ents = append(ents, e)
		}
		next := n.next.Load()
		if v2 := n.h.version.Load(); !ok || changed(v2, v) {
			v = n.h.stable()
			continue
		}

		// Emit from the validated snapshot.
		for _, e := range ents {
			if e.isLayer {
				substart := []byte(nil)
				subinc := true
				if resume != nil {
					if bytes.HasPrefix(resume, e.rem) {
						substart = resume[8:]
						subinc = inclusive
					} else if bytes.Compare(e.rem, resume) < 0 {
						continue // every key below this layer precedes resume
					}
				}
				sub := append(append([]byte(nil), prefix...), e.rem...)
				layer := ascendToRoot(e.layer)
				if !t.scanLayer(layer, substart, subinc, sub, kbuf, fn) {
					return false
				}
			} else {
				if resume != nil {
					if c := bytes.Compare(e.rem, resume); c < 0 || (c == 0 && !inclusive) {
						continue
					}
				}
				var full []byte
				if kbuf != nil {
					full = append(append((*kbuf)[:0], prefix...), e.rem...)
					*kbuf = full
				} else {
					full = make([]byte, 0, len(prefix)+len(e.rem))
					full = append(append(full, prefix...), e.rem...)
				}
				if !fn(full, e.lv) {
					return false
				}
			}
			resume = e.rem
			inclusive = false
		}

		if next == nil {
			return true
		}
		n = next
		v = n.h.stable()
	}
}
