// Package value implements Masstree's value objects (§4.7 of the paper).
//
// A Value is a version number plus an array of variable-length byte strings
// called columns. Values are immutable once published: a put that modifies a
// subset of columns builds a fresh Value, copying the surviving columns into
// a new object, and swings a single pointer. Concurrent readers therefore
// see either all or none of a multi-column put.
//
// Values are packed: the version, the worker tag, the column offset table,
// and every column's bytes live in one contiguous allocation. This is the
// paper's cache craftiness applied to the write path — a steady-state put
// costs exactly one allocation sized from the request, reading a value walks
// one cache-resident buffer instead of chasing per-column pointers, and the
// garbage collector sees one pointer-free object per value instead of a
// Value header, a column array, and N column slices.
//
// Sequential updates to a value obtain distinct, increasing version numbers;
// the version is written to the log and used during recovery to apply a
// value's updates in order (§5). The worker tag records which worker's
// (loosely synchronized, §5.1) clock issued the version, for log-merge
// diagnostics.
package value

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Packed layout, little endian. A *Value points at the first byte of one
// []byte allocation:
//
//	 0  version u64
//	 8  size    u32  total bytes of the allocation
//	12  ncols   u32
//	16  worker  u32  worker whose clock issued the version
//	20  expiry  u64  unix nanoseconds after which the value is dead; 0 = never
//	28  end[ncols] u32  cumulative column end offsets into the data section
//	28+4*ncols  column data, concatenated
const (
	offVersion = 0
	offSize    = 8
	offNCols   = 12
	offWorker  = 16
	offExpiry  = 20
	hdrSize    = 28
)

// Value is an immutable multi-column value. It is an opaque header over a
// packed allocation; never embed or copy a Value, only pass *Value.
//
// Values must not be mutated after they are published to a shared data
// structure; all update paths go through Build/Apply, which copy.
type Value struct {
	hdr [hdrSize]byte
}

// ColPut describes a modification of one column. Neither the ColPut slice
// nor the Data bytes are retained by Build/Apply: both are copied into the
// new value's packed allocation.
type ColPut struct {
	Col  int    // column index, >= 0
	Data []byte // new column contents
}

// buf reconstructs the value's whole packed allocation. Safe because every
// *Value points at the first byte of an allocation of exactly the recorded
// size, and the allocation holds no pointers.
func (v *Value) buf() []byte {
	size := binary.LittleEndian.Uint32(v.hdr[offSize:])
	return unsafe.Slice((*byte)(unsafe.Pointer(v)), size)
}

// finish seals a filled packed buffer as a *Value.
func finish(b []byte) *Value {
	return (*Value)(unsafe.Pointer(&b[0]))
}

// colEnd returns the cumulative data end offset of column i (i == -1 is 0).
func colEnd(b []byte, i int) int {
	if i < 0 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(b[hdrSize+4*i:]))
}

// New returns a fresh Value with version 1 holding copies of the given
// columns.
func New(cols ...[]byte) *Value {
	return NewAt(1, cols...)
}

// NewAt is New with an explicit version, used by log replay and checkpoint
// loading to reconstruct the exact pre-crash version numbers.
func NewAt(version uint64, cols ...[]byte) *Value {
	total := hdrSize + 4*len(cols)
	for _, c := range cols {
		total += len(c)
	}
	b := make([]byte, total)
	binary.LittleEndian.PutUint64(b[offVersion:], version)
	binary.LittleEndian.PutUint32(b[offSize:], uint32(total))
	binary.LittleEndian.PutUint32(b[offNCols:], uint32(len(cols)))
	off := 0
	data := b[hdrSize+4*len(cols):]
	for i, c := range cols {
		off += copy(data[off:], c)
		binary.LittleEndian.PutUint32(b[hdrSize+4*i:], uint32(off))
	}
	return finish(b)
}

// Version returns the value's update version number.
//masstree:noalloc
func (v *Value) Version() uint64 {
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v.hdr[offVersion:])
}

// Worker returns the id of the worker whose clock issued the version (0 for
// values built outside a worker context).
//masstree:noalloc
func (v *Value) Worker() uint32 {
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v.hdr[offWorker:])
}

// Size returns the value's packed allocation size in bytes (0 for nil). It
// is the figure cache-mode byte accounting charges per value: header, offset
// table, and column data in one number, read straight from the header.
//masstree:noalloc
func (v *Value) Size() int {
	if v == nil {
		return 0
	}
	return int(binary.LittleEndian.Uint32(v.hdr[offSize:]))
}

// ExpiresAt returns the value's expiry time in unix nanoseconds, or 0 for a
// value that never expires. Expiry rides in the packed header so it survives
// the log (wal.OpPutTTL) and checkpoints, and so reads can test it without
// touching any structure beyond the value itself.
//masstree:noalloc
func (v *Value) ExpiresAt() uint64 {
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v.hdr[offExpiry:])
}

// Expired reports whether the value carries an expiry at or before now
// (unix nanoseconds). A zero expiry never expires.
//masstree:noalloc
func (v *Value) Expired(now int64) bool {
	e := v.ExpiresAt()
	return e != 0 && e <= uint64(now)
}

// NumCols returns the number of columns.
//masstree:noalloc
func (v *Value) NumCols() int {
	if v == nil {
		return 0
	}
	return int(binary.LittleEndian.Uint32(v.hdr[offNCols:]))
}

// Col returns column i, or nil if the column does not exist or is empty.
// The returned slice aliases the value's packed allocation and must not be
// mutated.
//masstree:noalloc
func (v *Value) Col(i int) []byte {
	if v == nil || i < 0 || i >= v.NumCols() {
		return nil
	}
	b := v.buf()
	dataOff := hdrSize + 4*v.NumCols()
	start, end := colEnd(b, i-1), colEnd(b, i)
	if start == end {
		return nil
	}
	return b[dataOff+start : dataOff+end : dataOff+end]
}

// Cols materializes all columns as a fresh slice of subslices of the packed
// allocation. It allocates; alloc-sensitive callers should iterate
// NumCols/Col instead. The column contents must not be mutated.
func (v *Value) Cols() [][]byte {
	if v == nil {
		return nil
	}
	out := make([][]byte, v.NumCols())
	for i := range out {
		out[i] = v.Col(i)
	}
	return out
}

// Bytes returns column 0; it is the natural accessor for single-column
// values, which is how simple get/put workloads use the store.
//masstree:noalloc
func (v *Value) Bytes() []byte { return v.Col(0) }

// colData returns the bytes column i will hold after applying puts to old:
// the last put to i wins, else old's column survives.
func colData(old *Value, puts []ColPut, i int) []byte {
	for j := len(puts) - 1; j >= 0; j-- {
		if puts[j].Col == i {
			return puts[j].Data
		}
	}
	return old.Col(i)
}

// BuildAt builds the packed value holding old's columns with the given
// column modifications applied, at an explicit version with a worker tag.
// old may be nil (pure insert). Everything — surviving columns and put data
// alike — is copied into one allocation sized from the inputs, so neither
// old nor the puts are retained. Column indexes beyond the current width
// grow the column array; intervening columns are empty.
//
// This is the write path's only allocation (§4.7): the kvstore calls it
// under the owning border node's lock with a version from the worker's
// clock. The built value carries no expiry — a put without a TTL makes the
// key persistent, exactly as its log record (wal.OpPut) will replay it.
func BuildAt(old *Value, puts []ColPut, version uint64, worker uint32) *Value {
	return BuildTTLAt(old, puts, version, worker, 0)
}

// BuildTTLAt is BuildAt with an expiry timestamp (unix nanoseconds, 0 =
// never) stored in the packed header. With puts == nil it rebuilds old's
// columns unchanged under the new version and expiry — the Touch operation.
func BuildTTLAt(old *Value, puts []ColPut, version uint64, worker uint32, expiry uint64) *Value {
	width := old.NumCols()
	for _, p := range puts {
		if p.Col < 0 {
			panic(fmt.Sprintf("value: negative column index %d", p.Col))
		}
		if p.Col+1 > width {
			width = p.Col + 1
		}
	}
	total := hdrSize + 4*width
	for i := 0; i < width; i++ {
		total += len(colData(old, puts, i))
	}
	b := make([]byte, total)
	binary.LittleEndian.PutUint64(b[offVersion:], version)
	binary.LittleEndian.PutUint32(b[offSize:], uint32(total))
	binary.LittleEndian.PutUint32(b[offNCols:], uint32(width))
	binary.LittleEndian.PutUint32(b[offWorker:], worker)
	binary.LittleEndian.PutUint64(b[offExpiry:], expiry)
	off := 0
	data := b[hdrSize+4*width:]
	for i := 0; i < width; i++ {
		off += copy(data[off:], colData(old, puts, i))
		binary.LittleEndian.PutUint32(b[hdrSize+4*i:], uint32(off))
	}
	return finish(b)
}

// Apply returns a new Value with the given column modifications applied and
// the version advanced past old's. old may be nil (pure insert). It is
// BuildAt without an explicit version or worker tag.
func Apply(old *Value, puts []ColPut) *Value {
	return BuildAt(old, puts, old.Version()+1, 0)
}

// ApplyAt is Apply with an explicit new version, used by log replay.
func ApplyAt(old *Value, puts []ColPut, version uint64) *Value {
	return BuildAt(old, puts, version, 0)
}

// ApplyTTLAt is ApplyAt carrying an expiry, used to replay wal.OpPutTTL
// records and to load checkpoint entries that recorded one.
func ApplyTTLAt(old *Value, puts []ColPut, version uint64, expiry uint64) *Value {
	return BuildTTLAt(old, puts, version, 0, expiry)
}

// Equal reports whether two values have identical columns (versions are not
// compared; empty and missing columns are identical). Used by tests.
func Equal(a, b *Value) bool {
	if a.NumCols() != b.NumCols() {
		return false
	}
	for i := 0; i < a.NumCols(); i++ {
		if string(a.Col(i)) != string(b.Col(i)) {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer for debugging.
func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("v%d%q", v.Version(), v.Cols())
}
