// Package partition implements the hard-partitioned configuration of §6.6:
// N instances of the single-core Masstree variant (seqtree), each owned by
// one executor goroutine, with the key space statically partitioned. This
// is how VoltDB-style stores avoid concurrency control — and why they
// collapse under skew: a hot partition saturates its core while the others
// idle, and clients that preserve the skew ratio must wait for it.
//
// Clients address a partition explicitly (the paper's clients send each
// query to the instance appropriate for the query's key) and may batch
// operations per message to amortize the hand-off, as network clients batch
// queries.
package partition

import (
	"hash/fnv"
	"sync"

	"repro/internal/baseline/seqtree"
	"repro/internal/value"
)

// OpKind selects the operation of an Op.
type OpKind uint8

// Operation kinds.
const (
	OpGet OpKind = iota
	OpPut
	OpRemove
)

// Op is one operation addressed to a partition.
type Op struct {
	Kind  OpKind
	Key   []byte
	Value *value.Value // OpPut
}

// Result is one operation's outcome.
type Result struct {
	Value *value.Value
	OK    bool
}

// Store is a set of single-threaded partitions.
type Store struct {
	parts []*part
	wg    sync.WaitGroup
}

type part struct {
	tree *seqtree.Tree
	ch   chan batchReq
}

type batchReq struct {
	ops  []Op
	res  []Result
	done chan struct{}
}

// New creates a store with n partitions, each with a request queue of the
// given depth (in batches) and its own executor goroutine.
func New(n, queueDepth int) *Store {
	if n <= 0 {
		n = 1
	}
	if queueDepth <= 0 {
		queueDepth = 16
	}
	s := &Store{}
	for i := 0; i < n; i++ {
		p := &part{tree: seqtree.New(), ch: make(chan batchReq, queueDepth)}
		s.parts = append(s.parts, p)
		s.wg.Add(1)
		go s.run(p)
	}
	return s
}

func (s *Store) run(p *part) {
	defer s.wg.Done()
	for req := range p.ch {
		for i, op := range req.ops {
			switch op.Kind {
			case OpGet:
				v, ok := p.tree.Get(op.Key)
				req.res[i] = Result{Value: v, OK: ok}
			case OpPut:
				old, replaced := p.tree.Put(op.Key, op.Value)
				req.res[i] = Result{Value: old, OK: replaced}
			case OpRemove:
				old, ok := p.tree.Remove(op.Key)
				req.res[i] = Result{Value: old, OK: ok}
			}
		}
		close(req.done)
	}
}

// Partitions returns the partition count.
func (s *Store) Partitions() int { return len(s.parts) }

// PartitionFor statically maps a key to its partition.
func (s *Store) PartitionFor(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32()) % len(s.parts)
}

// Do executes a batch of operations on one partition, blocking until the
// partition's executor has processed it. Results are in op order.
func (s *Store) Do(partition int, ops []Op) []Result {
	res := make([]Result, len(ops))
	req := batchReq{ops: ops, res: res, done: make(chan struct{})}
	s.parts[partition].ch <- req
	<-req.done
	return res
}

// Get routes a single get by key hash.
func (s *Store) Get(key []byte) (*value.Value, bool) {
	r := s.Do(s.PartitionFor(key), []Op{{Kind: OpGet, Key: key}})
	return r[0].Value, r[0].OK
}

// Put routes a single put by key hash.
func (s *Store) Put(key []byte, v *value.Value) bool {
	r := s.Do(s.PartitionFor(key), []Op{{Kind: OpPut, Key: key, Value: v}})
	return r[0].OK
}

// Remove routes a single remove by key hash.
func (s *Store) Remove(key []byte) bool {
	r := s.Do(s.PartitionFor(key), []Op{{Kind: OpRemove, Key: key}})
	return r[0].OK
}

// Len sums the partition sizes (quiesce first for an exact answer).
func (s *Store) Len() int {
	n := 0
	for i, p := range s.parts {
		done := make(chan struct{})
		s.parts[i].ch <- batchReq{done: done}
		<-done
		n += p.tree.Len()
	}
	return n
}

// Close shuts down the executors.
func (s *Store) Close() {
	for _, p := range s.parts {
		close(p.ch)
	}
	s.wg.Wait()
}
