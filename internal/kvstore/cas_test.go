package kvstore

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/value"
)

func col0(data string) []value.ColPut {
	return []value.ColPut{{Col: 0, Data: []byte(data)}}
}

func TestCasPutSemantics(t *testing.T) {
	s, err := Open(Config{MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := []byte("counter")

	// Expect-absent on an absent key: atomic create.
	v1, ok := s.CasPut(0, key, 0, col0("one"))
	if !ok || v1 == 0 {
		t.Fatalf("create cas: ver=%d ok=%v", v1, ok)
	}

	// Expect-absent again: conflict reporting the current version.
	if cur, ok := s.CasPut(0, key, 0, col0("nope")); ok || cur != v1 {
		t.Fatalf("stale create cas: ver=%d ok=%v want ver=%d", cur, ok, v1)
	}

	// Correct expectation: the write applies and versions advance.
	v2, ok := s.CasPut(0, key, v1, col0("two"))
	if !ok || v2 <= v1 {
		t.Fatalf("cas update: ver=%d ok=%v (prev %d)", v2, ok, v1)
	}
	if got, ok := s.Get(key, nil); !ok || string(got[0]) != "two" {
		t.Fatalf("after cas: %q %v", got, ok)
	}

	// Stale expectation: conflict, value untouched.
	if cur, ok := s.CasPut(0, key, v1, col0("lost")); ok || cur != v2 {
		t.Fatalf("stale cas: ver=%d ok=%v want %d", cur, ok, v2)
	}
	if got, _ := s.Get(key, nil); string(got[0]) != "two" {
		t.Fatalf("stale cas mutated value: %q", got)
	}

	// Expecting a version on an absent key: conflict with version 0.
	if cur, ok := s.CasPut(0, []byte("ghost"), 7, col0("x")); ok || cur != 0 {
		t.Fatalf("cas on absent: ver=%d ok=%v", cur, ok)
	}
	if _, ok := s.Get([]byte("ghost"), nil); ok {
		t.Fatal("conflicting cas inserted a key")
	}

	// A remove resets the key to "absent": expect-0 succeeds again and the
	// new version stays above the removed one (no version regression).
	if !s.Remove(0, key) {
		t.Fatal("remove failed")
	}
	v3, ok := s.CasPut(0, key, 0, col0("three"))
	if !ok || v3 <= v2 {
		t.Fatalf("cas after remove: ver=%d ok=%v (prev %d)", v3, ok, v2)
	}
}

// A successful CasPut is logged as an ordinary put: it must survive crash
// recovery exactly like Put, and a conflicting CasPut must leave no trace.
func TestCasPutRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 2, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	v1, ok := s.CasPut(0, []byte("k"), 0, col0("created"))
	if !ok {
		t.Fatal("create cas failed")
	}
	v2, ok := s.CasPut(1, []byte("k"), v1, col0("updated"))
	if !ok {
		t.Fatal("update cas failed")
	}
	if _, ok := s.CasPut(0, []byte("k"), v1, col0("conflicted")); ok {
		t.Fatal("stale cas succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Config{Dir: dir, Workers: 2, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	v, ok := r.GetValue([]byte("k"))
	if !ok || string(v.Col(0)) != "updated" {
		t.Fatalf("recovered %q ok=%v", v.Col(0), ok)
	}
	if v.Version() != v2 {
		t.Fatalf("recovered version %d want %d", v.Version(), v2)
	}
}

// Concurrent CAS-increment on one key: every increment must be applied
// exactly once (no lost updates), the defining linearizability property of
// compare-and-swap. Run with -race in CI.
func TestCasPutConcurrentIncrement(t *testing.T) {
	s, err := Open(Config{Workers: 4, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := []byte("ctr")
	if _, ok := s.CasPut(0, key, 0, col0("0")); !ok {
		t.Fatal("seed failed")
	}

	const goroutines = 4
	const increments = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			sess := s.Session(worker)
			defer sess.Close()
			for i := 0; i < increments; i++ {
				for {
					v, ok := sess.GetValue(key)
					if !ok {
						t.Error("counter vanished")
						return
					}
					n, err := strconv.Atoi(string(v.Col(0)))
					if err != nil {
						t.Errorf("bad counter: %v", err)
						return
					}
					if _, ok := sess.CasPut(key, v.Version(), col0(fmt.Sprint(n+1))); ok {
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()

	got, _ := s.Get(key, nil)
	if want := fmt.Sprint(goroutines * increments); string(got[0]) != want {
		t.Fatalf("lost updates: counter=%q want %s", got[0], want)
	}
}
