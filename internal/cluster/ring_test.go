package cluster

import (
	"fmt"
	"testing"
)

// TestRingGolden pins the ring's key→shard mapping as golden values. Every
// client of a cluster must compute the same owner for every key — that is
// the property the torture harness's "no reply from the wrong shard"
// assertion rests on — so any change to the hash, the vnode labeling, or
// the tie-break is a resharding event and must fail here loudly, not slip
// silently into a deployment where old and new clients disagree about
// ownership.
func TestRingGolden(t *testing.T) {
	r := NewRing([]string{"node-a:7500", "node-b:7500", "node-c:7500"}, 0)
	golden := []struct {
		key  string
		node int
	}{
		{"alpha", 2},
		{"bravo", 0},
		{"charlie", 0},
		{"delta", 0},
		{"echo", 2},
		{"foxtrot", 0},
		{"golf", 1},
		{"hotel", 2},
		{"india", 2},
		{"juliet", 2},
		{"kilo", 1},
		{"lima", 0},
		{"", 2},
		{"user:0001", 0},
		{"user:0002", 1},
		{"user:0003", 2},
	}
	for _, g := range golden {
		if got := r.Owner([]byte(g.key)); got != g.node {
			t.Errorf("Owner(%q) = %d, golden %d — the ring hash changed; this is a resharding event",
				g.key, got, g.node)
		}
	}
	if s0, s1, s2 := r.Successor(0), r.Successor(1), r.Successor(2); s0 != 2 || s1 != 0 || s2 != 0 {
		t.Errorf("Successor = %d,%d,%d, golden 2,0,0", s0, s1, s2)
	}
}

// Two rings over the same addresses must agree exactly; the ring must not
// depend on construction order of anything internal.
func TestRingDeterministic(t *testing.T) {
	addrs := []string{"h1:1", "h2:2", "h3:3", "h4:4"}
	a, b := NewRing(addrs, 32), NewRing(addrs, 32)
	for i := 0; i < 10_000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings over identical addrs disagree on %q", k)
		}
	}
}

// Key distribution across shards must be roughly uniform — a structurally
// skewed ring silently turns one node into the bottleneck. The bound is
// loose (each shard within 2x of fair share) because consistent hashing
// with finite vnodes has real variance; the regression this guards against
// is the pathological clustering a weak point hash produces.
func TestRingBalance(t *testing.T) {
	const nodes, keys = 3, 30_000
	addrs := make([]string, nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%c:7500", 'a'+i)
	}
	r := NewRing(addrs, 0)
	counts := make([]int, nodes)
	for i := 0; i < keys; i++ {
		counts[r.Owner([]byte(fmt.Sprintf("key-%06d", i)))]++
	}
	fair := keys / nodes
	for n, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("node %d owns %d of %d keys (fair share %d): ring is structurally skewed %v",
				n, c, keys, fair, counts)
		}
	}
}

// Removing one node must not reshuffle keys among the survivors — the
// consistent-hashing property that makes rebalance (future work) cheap:
// only the dead node's keys move.
func TestRingConsistency(t *testing.T) {
	full := NewRing([]string{"a:1", "b:1", "c:1"}, 64)
	reduced := NewRing([]string{"a:1", "b:1"}, 64)
	for i := 0; i < 10_000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		was := full.Owner(k)
		if was == 2 {
			continue // the removed node's keys may go anywhere
		}
		if now := reduced.Owner(k); now != was {
			t.Fatalf("key %q moved %d→%d though its owner survived", k, was, now)
		}
	}
}

// Successor must never return the node itself on a multi-node ring (it is
// the failover target) and must be stable.
func TestRingSuccessor(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "c:1", "d:1"}, 16)
	for n := 0; n < 4; n++ {
		s := r.Successor(n)
		if s == n {
			t.Errorf("Successor(%d) = itself on a 4-node ring", n)
		}
		if s != r.Successor(n) {
			t.Errorf("Successor(%d) unstable", n)
		}
	}
	if one := NewRing([]string{"a:1"}, 16); one.Successor(0) != 0 {
		t.Error("Successor on a 1-node ring must return the node")
	}
}
