package kvstore

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// The multi-writer-per-key crash torture. The original harness pinned each
// key to one worker ("a key is always written through the same worker")
// because the paper's recovery was only immune to log loss under that
// assumption: a key whose partial-column deltas span logs could be
// mis-merged if the earlier log vanished wholesale. Version-chained records
// plus cross-log handoff anchoring retire the assumption, and this file is
// the retirement proof: shared keys deliberately hop workers between
// partial-column puts, every filesystem boundary is crashed, and on top of
// the standard crash images a new adversity removes one worker's log files
// wholesale. The model demands exact per-key column state everywhere —
// recovered (version, columns) must equal some state the live store
// actually produced, never a mix — and any state older than the last
// acknowledged one is tolerated only when recovery itself accounted for it
// (RecoveryStats.BrokenChains / MissingLogs).

// putW writes key through an explicit worker, updating the model exactly
// like put. Keys written through putW hop logs on purpose.
func (tt *torture) putW(worker int, key string, puts ...value.ColPut) {
	h := tt.histOf(key)
	h.worker = worker
	ver := tt.s.Put(worker, []byte(key), puts)
	cols, ok := tt.s.Get([]byte(key), nil)
	if !ok {
		fatalDump(tt.t, tt.s, "key %q vanished right after put", key)
	}
	h.states = append(h.states, kvState{ver: ver, data: joinCols(cols)})
	h.dropped = false
}

// removeW is remove through an explicit worker.
func (tt *torture) removeW(worker int, key string) {
	h := tt.histOf(key)
	h.worker = worker
	if tt.s.Remove(worker, []byte(key)) {
		h.states = append(h.states, kvState{tomb: true})
	}
}

// workloadMultiWriter drives shared keys through alternating workers with
// partial-column puts: every column of a key may live in a different log,
// chains hop logs mid-key (each hop forced to anchor), and a checkpoint
// plus a remove/re-insert cycle land mid-history.
func (tt *torture) workloadMultiWriter() error {
	// Phase 1: each key's columns built up through different logs.
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("mw%02d", i)
		tt.putW(0, k, value.ColPut{Col: 0, Data: []byte(fmt.Sprintf("w0c0-%d", i))})
		tt.putW(1, k, value.ColPut{Col: 1, Data: []byte(fmt.Sprintf("w1c1-%d", i))})
	}
	if err := tt.ack(); err != nil {
		return err
	}
	if err := tt.ckpt(); err != nil {
		return err
	}
	// Phase 2: single-column overwrites hopping workers over checkpointed
	// state, plus a cross-worker remove.
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("mw%02d", i)
		tt.putW(i%2, k, value.ColPut{Col: i % 2, Data: []byte(fmt.Sprintf("r2-%d", i))})
	}
	tt.removeW(1, "mw00")
	if err := tt.ack(); err != nil {
		return err
	}
	// Phase 3: re-insert through the other worker, then three-hop keys
	// (w0, w1, w0 again) so chains cross logs twice.
	tt.putW(0, "mw00", value.ColPut{Col: 0, Data: []byte("reborn")})
	tt.putW(1, "mw00", value.ColPut{Col: 1, Data: []byte("reborn-c1")})
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("hop%02d", i)
		tt.putW(0, k, value.ColPut{Col: 0, Data: []byte("h0")})
		tt.putW(1, k, value.ColPut{Col: 1, Data: []byte("h1")})
		tt.putW(0, k, value.ColPut{Col: 2, Data: []byte("h2")})
	}
	if err := tt.ack(); err != nil {
		return err
	}
	// Phase 4: applied but never acknowledged (may or may not survive).
	tt.putW(1, "mw01", value.ColPut{Col: 0, Data: []byte("pending")})
	tt.putW(0, "unacked-new", value.ColPut{Col: 0, Data: []byte("pending2")})
	return nil
}

// verifyVanished recovers from img after removing every log file of the
// given worker — the whole-log-removal crash image — and checks the
// weakened-but-accounted model: exact states only (a recovered key still
// equals some applied state, byte for byte — the mis-merge this image used
// to produce is the one absolutely forbidden outcome), no never-written
// keys, and any state older than acknowledged (or an acknowledged key gone
// entirely) only with BrokenChains or MissingLogs reporting it.
func (tt *torture) verifyVanished(img *vfs.MemFS, vanished int, label string) {
	t := tt.t
	// An early crash may leave no durable directory at all — then there is
	// nothing to vanish and recovery starts from scratch anyway.
	if files, err := wal.ListLogFilesFS(img, tortureDir); err == nil {
		for _, f := range files {
			if f.Worker == vanished {
				if err := img.Remove(f.Path); err != nil {
					t.Fatalf("%s: removing %s: %v", label, f.Path, err)
				}
			}
		}
		img.SyncDir(tortureDir)
	}
	r, err := Open(Config{
		Dir: tortureDir, Workers: tt.workers, FS: img, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1, CheckpointParts: tt.parts,
	})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer r.Close()
	stats := r.RecoveryStats()
	rolledBack := false
	r.Tree().Scan(nil, func(k []byte, v *value.Value) bool {
		h := tt.hist[string(k)]
		if h == nil {
			fatalDump(t, r, "%s: recovered key %q that was never written", label, k)
		}
		idx := -1
		for j, st := range h.states {
			if !st.tomb && st.ver == v.Version() {
				idx = j
				break
			}
		}
		if idx < 0 {
			fatalDump(t, r, "%s: key %q recovered at version %d, matching no applied state", label, k, v.Version())
		}
		if got := joinCols(v.Cols()); got != h.states[idx].data {
			fatalDump(t, r, "%s: key %q version %d recovered %q, applied state was %q (mis-merged)",
				label, k, v.Version(), got, h.states[idx].data)
		}
		if idx < h.acked {
			rolledBack = true
		}
		return true
	})
	for k, h := range tt.hist {
		if _, ok := r.Get([]byte(k), nil); ok {
			continue
		}
		if h.acked < 0 || h.dropped {
			continue
		}
		tomb := false
		for j := h.acked; j < len(h.states); j++ {
			if h.states[j].tomb {
				tomb = true
				break
			}
		}
		if !tomb {
			rolledBack = true
			_ = k
		}
	}
	if rolledBack && stats.BrokenChains == 0 && stats.MissingLogs == 0 {
		fatalDump(t, r, "%s: state rolled back below an acknowledged write with no broken_chains/missing_logs accounting", label)
	}
}

// runTortureMultiWriter executes the multi-writer workload with a crash
// armed at boundary crashAt (0 = disarmed), then verifies recovery from
// every standard crash image under the full model, and from the keep-all
// image with each worker's logs removed wholesale under the accounted
// model.
func runTortureMultiWriter(t *testing.T, crashAt, workers int) (ops int, crashed bool) {
	mem := vfs.NewMemFS()
	fault := vfs.NewFault(mem)
	fault.CrashAt(crashAt)
	tt := &torture{t: t, mem: mem, fault: fault, hist: map[string]*keyHist{}, workers: workers, parts: 1}
	s, err := Open(Config{
		Dir: tortureDir, Workers: workers, FS: fault, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1, CheckpointParts: 1,
	})
	if err != nil {
		if !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("crashAt=%d: open: %v", crashAt, err)
		}
	} else {
		tt.s = s
		if werr := tt.workloadMultiWriter(); werr != nil && !errors.Is(werr, vfs.ErrCrashed) {
			t.Fatalf("crashAt=%d: workload: %v", crashAt, werr)
		}
		if cerr := s.Close(); cerr == nil && !fault.Crashed() {
			tt.promote()
		}
	}
	ops, crashed = fault.Ops(), fault.Crashed()
	for _, img := range crashImages {
		c := mem.Clone()
		c.Crash(img.keep)
		tt.verify(c, fmt.Sprintf("mw crashAt=%d/%s", crashAt, img.name))
	}
	for w := 0; w < workers; w++ {
		c := mem.Clone()
		c.Crash(vfs.KeepAll)
		tt.verifyVanished(c, w, fmt.Sprintf("mw crashAt=%d/vanish-log-%d", crashAt, w))
	}
	return ops, crashed
}

// TestCrashTortureMultiWriter enumerates every filesystem boundary of the
// deterministic two-worker multi-writer workload (sequential ops, one
// checkpoint part, so the op stream is stable) and crashes at each one,
// recovering from the standard images plus the vanished-log images.
func TestCrashTortureMultiWriter(t *testing.T) {
	total, crashed := runTortureMultiWriter(t, 0, 2)
	if crashed {
		t.Fatal("disarmed run crashed")
	}
	t.Logf("multi-writer workload executes %d crash boundaries x %d images",
		total, len(crashImages)+2)
	for i := 1; i <= total; i++ {
		runTortureMultiWriter(t, i, 2)
	}
}
