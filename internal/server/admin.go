package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/obs"
)

// AdminMux returns the server's admin HTTP handler. It is opt-in
// (masstree-server wires it up only under -admin) and never shares a
// listener with the data plane:
//
//	/metrics         Prometheus text exposition: every numeric stat as a
//	                 gauge plus full latency histograms with bucket bounds
//	/varz            the same snapshot as JSON, histograms with quantiles
//	                 and non-zero buckets broken out
//	/flightrecorder  the merged flight-recorder timeline as text
//	/debug/pprof/*   the stdlib profiling endpoints
//
// /metrics, /varz, and the wire Stats op all render from one collectStats
// pass, so a value scraped from any of the three means the same thing.
func (s *Server) AdminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/varz", s.handleVarz)
	mux.HandleFunc("/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics renders the stats snapshot in Prometheus text exposition
// format, hand-rolled (the module stays dependency-free). Counters and
// quantile keys become masstree_<name> gauges; each latency histogram is
// additionally emitted as a classic cumulative-bucket histogram (the raw
// lat_*_b<i> keys are skipped as gauges — the histogram blocks carry the
// same counts with proper le bounds).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	stats, snaps := s.collectStats()
	for _, st := range stats {
		if obs.IsBucketKey(st.Name) {
			continue
		}
		io.WriteString(w, "masstree_"+st.Name+" "+strconv.FormatInt(st.Value, 10)+"\n")
	}
	for _, hs := range snaps {
		obs.WriteProm(w, hs)
	}
}

// varzHist is one histogram in the /varz JSON document.
type varzHist struct {
	Count uint64 `json:"count"`
	SumNS uint64 `json:"sum_ns"`
	Mean  uint64 `json:"mean_ns"`
	P50   uint64 `json:"p50_ns"`
	P90   uint64 `json:"p90_ns"`
	P99   uint64 `json:"p99_ns"`
	P999  uint64 `json:"p999_ns"`
	// Buckets lists non-zero buckets as [low bound ns, count] pairs.
	Buckets [][2]uint64 `json:"buckets,omitempty"`
}

// handleVarz renders the stats snapshot as one JSON document: the flat
// numeric stats map (the exact keys the wire Stats op serves) plus each
// latency histogram broken out with quantiles and non-zero buckets. Both
// sections derive from the same collectStats pass, so varz quantiles always
// equal the lat_*_p* keys beside them.
func (s *Server) handleVarz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	stats, snaps := s.collectStats()
	doc := struct {
		Stats          map[string]int64    `json:"stats"`
		Hists          map[string]varzHist `json:"hists"`
		FlushLastError string              `json:"flush_last_error,omitempty"`
	}{Stats: make(map[string]int64, len(stats)), Hists: make(map[string]varzHist, len(snaps))}
	for _, st := range stats {
		doc.Stats[st.Name] = st.Value
	}
	for _, hs := range snaps {
		vh := varzHist{
			Count: hs.Count(),
			SumNS: hs.Sum,
			Mean:  hs.Mean(),
			P50:   hs.Quantile(0.50),
			P90:   hs.Quantile(0.90),
			P99:   hs.Quantile(0.99),
			P999:  hs.Quantile(0.999),
		}
		for b := 0; b < obs.NumBuckets; b++ {
			if hs.Buckets[b] != 0 {
				vh.Buckets = append(vh.Buckets, [2]uint64{obs.BucketLow(b), hs.Buckets[b]})
			}
		}
		doc.Hists[hs.Name] = vh
	}
	if _, last := s.store.FlushStats(); last != nil {
		doc.FlushLastError = last.Error()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// handleFlightRecorder dumps the merged flight-recorder timeline, oldest
// event first, one line per event.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, s.obs.Recorder().DumpString())
}
