package server

import (
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/wire"
)

// TestBatchedPutsMatchPerKeyPuts sends messages full of consecutive OpPuts
// (served through Session.PutBatchInto) and verifies the stored state and
// returned versions match what per-key puts would produce: every key holds
// its last write, versions are per-key increasing (including duplicates
// inside one message, which must apply in request order), and the
// batched_puts stat proves the batched path served them.
func TestBatchedPutsMatchPerKeyPuts(t *testing.T) {
	srv, addr := startServer(t, t.TempDir())
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const batch = 64
	const rounds = 10
	key := func(i int) []byte { return []byte(fmt.Sprintf("bp-key-%04d", i%48)) } // 48 keys → duplicates per message
	lastVer := map[string]uint64{}
	reqs := make([]wire.Request, batch)
	for round := 0; round < rounds; round++ {
		for j := range reqs {
			reqs[j] = wire.Request{Op: wire.OpPut, Key: key(round*batch + j),
				Puts: []wire.ColData{{Col: 0, Data: []byte(fmt.Sprintf("r%02d-j%02d", round, j))}}}
		}
		resps, err := c.DoReuse(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for j, r := range resps {
			if r.Status != wire.StatusOK || r.Version == 0 {
				t.Fatalf("round %d req %d: status %d version %d", round, j, r.Status, r.Version)
			}
			k := string(reqs[j].Key)
			if r.Version <= lastVer[k] {
				t.Fatalf("round %d req %d: key %q version %d not after %d", round, j, k, r.Version, lastVer[k])
			}
			lastVer[k] = r.Version
		}
	}

	// Every key must hold its final write.
	for i := 0; i < 48; i++ {
		var lastData string
		for round := rounds - 1; round >= 0 && lastData == ""; round-- {
			for j := batch - 1; j >= 0; j-- {
				if string(key(round*batch+j)) == string(key(i)) {
					lastData = fmt.Sprintf("r%02d-j%02d", round, j)
					break
				}
			}
		}
		got, ok, err := c.Get(key(i), nil)
		if err != nil || !ok {
			t.Fatalf("get %q: %v %v", key(i), ok, err)
		}
		if string(got[0]) != lastData {
			t.Fatalf("key %q = %q, want last batched write %q", key(i), got[0], lastData)
		}
	}

	if n := srv.batchedPuts.Load(); n < int64(rounds*batch) {
		t.Fatalf("batched path served %d puts, want >= %d — runs are not using Session.PutBatchInto", n, rounds*batch)
	}
}

// TestPutRunFrameAliasing pins the no-copy contract: put data decoded from
// the frame may alias the connection's reusable buffers, so consecutive
// messages rewriting the same keys must not corrupt previously stored
// values (the store must have copied the bytes out).
func TestPutRunFrameAliasing(t *testing.T) {
	_, addr := startServer(t, "")
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reqs := make([]wire.Request, 8)
	for round := 0; round < 3; round++ {
		for j := range reqs {
			reqs[j] = wire.Request{Op: wire.OpPut, Key: []byte(fmt.Sprintf("alias-%d", j)),
				Puts: []wire.ColData{{Col: 0, Data: []byte(fmt.Sprintf("round%d-value%d", round, j))}}}
		}
		if _, err := c.DoReuse(reqs); err != nil {
			t.Fatal(err)
		}
	}
	for j := range reqs {
		got, ok, err := c.Get([]byte(fmt.Sprintf("alias-%d", j)), nil)
		if err != nil || !ok || string(got[0]) != fmt.Sprintf("round2-value%d", j) {
			t.Fatalf("alias-%d = %q %v %v", j, got, ok, err)
		}
	}
}

// TestServerPutPathAllocs pins the server's batched put hot path at its
// steady-state allocation count: one packed value per put and nothing else
// (scratch, responses, and version slices are all reused).
func TestServerPutPathAllocs(t *testing.T) {
	store, err := kvstore.Open(kvstore.Config{MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, 1)
	sess := store.Session(0)
	defer sess.Close()

	const batch = 64
	reqs := make([]wire.Request, batch)
	data := make([]wire.ColData, batch)
	for j := range reqs {
		data[j] = wire.ColData{Col: 0, Data: []byte("steady-state-column-data")}
		reqs[j] = wire.Request{Op: wire.OpPut, Key: []byte(fmt.Sprintf("allocs-key-%04d", j)), Puts: data[j : j+1]}
	}
	sc := &connScratch{}
	srv.executeBatch(sess, reqs, len(reqs), sc, true) // warm scratch and insert the keys
	allocs := testing.AllocsPerRun(100, func() {
		srv.executeBatch(sess, reqs, len(reqs), sc, true)
	})
	// One packed value per put is the floor; allow nothing beyond it.
	if allocs > batch {
		t.Fatalf("server put path allocates %.1f per %d-put batch, want <= %d (one packed value per put)", allocs, batch, batch)
	}
}
