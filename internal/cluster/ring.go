package cluster

import (
	"sort"
	"strconv"
)

// DefaultVirtualNodes is how many ring points each node contributes when
// Config.VirtualNodes is zero. More points smooth the key distribution
// (stddev of shard load shrinks roughly with 1/sqrt(points)); 128 keeps the
// ring small enough that a lookup's binary search stays in cache.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring: each node contributes VirtualNodes
// points at deterministic positions on a 64-bit hash circle, and a key is
// owned by the node whose point is the first at or clockwise of the key's
// hash. The mapping depends only on (addrs, vnodes) — not on construction
// order, process, or run — so tests can pin key→shard assignments as
// golden values and any future hash change is loud, and so every client
// of the same cluster computes the same owner for every key (the property
// that makes "no reply from the wrong shard" checkable at all).
//
// Determinism contract: the point for node a's i-th virtual node is
// fnv1a(a + "#" + itoa(i)), a key's position is fnv1a(key), and ties on
// identical point hashes break toward the smaller node index. Changing any
// of these is a resharding event and must update TestRingGolden.
type Ring struct {
	points []ringPoint // sorted by hash, ties by node
	n      int
}

type ringPoint struct {
	hash uint64
	node int
}

// NewRing builds the ring for the given node addresses. vnodes <= 0 uses
// DefaultVirtualNodes. Node identity is the address string: the same
// address list always yields the same ring, and reordering the list only
// renumbers nodes (hash positions follow the address, not the index).
func NewRing(addrs []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(addrs)*vnodes), n: len(addrs)}
	for node, addr := range addrs {
		for i := 0; i < vnodes; i++ {
			h := fnv1a([]byte(addr + "#" + strconv.Itoa(i)))
			r.points = append(r.points, ringPoint{hash: h, node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes is the number of nodes on the ring.
func (r *Ring) Nodes() int { return r.n }

// Owner maps a key to its owning node index.
func (r *Ring) Owner(key []byte) int {
	if len(r.points) == 0 {
		return 0
	}
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point, the first point owns
	}
	return r.points[i].node
}

// Successor returns the first node index clockwise of node's first point
// that is a different node — the natural "elsewhere" for a read that wants
// a second opinion when its owner is down. With one node it returns node.
func (r *Ring) Successor(node int) int {
	if r.n <= 1 {
		return node
	}
	// Find node's first point, then walk clockwise to the next point owned
	// by someone else. Deterministic for the same reasons Owner is.
	for i, p := range r.points {
		if p.node != node {
			continue
		}
		for j := 1; j < len(r.points); j++ {
			q := r.points[(i+j)%len(r.points)]
			if q.node != node {
				return q.node
			}
		}
		return node
	}
	return (node + 1) % r.n
}

// fnv1a is the 64-bit FNV-1a hash run through a splitmix64 finalizer —
// small, allocation-free, and stable across Go versions (unlike maphash),
// which the golden ring test relies on. Raw FNV positions cluster badly on
// short near-identical inputs (vnode labels differ only in a decimal
// suffix), skewing ring arcs by 2x and worse; the finalizer's avalanche
// restores near-uniform arcs without giving up determinism.
func fnv1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	// splitmix64 finalizer (Stafford variant), bijective on uint64.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
