package bench

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/workload"
)

// Fig10 reproduces Figure 10 (§6.5 scalability): per-core throughput of get
// and put workloads as the worker count grows. Ideal scalability is a flat
// line; the paper reaches 12.7x/12.5x at 16 cores, limited by growing DRAM
// stall time. Worker counts beyond GOMAXPROCS are oversubscribed and noted.
func Fig10(sc Scale) *Table {
	sc = sc.withDefaults()
	t := &Table{
		ID:      "fig10",
		Title:   fmt.Sprintf("scalability, %d keys (Figure 10)", sc.Keys),
		Headers: []string{"workers", "get Mreq/s/worker", "put Mreq/s/worker", "get total", "put total"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d; rows beyond that oversubscribe the scheduler", runtime.GOMAXPROCS(0)),
		},
	}
	maxW := sc.Workers
	if maxW < runtime.GOMAXPROCS(0) {
		maxW = runtime.GOMAXPROCS(0)
	}
	for workers := 1; workers <= maxW; workers *= 2 {
		keysPerWorker := sc.Keys / workers
		keys := make([][][]byte, workers)
		for w := range keys {
			keys[w] = workload.Keys(workload.Decimal(int64(500+w)), keysPerWorker)
		}
		tr := core.New()
		putTput := measure(workers, keysPerWorker, func(w, i int) {
			k := keys[w][i]
			tr.Put(k, value.New(k))
		})
		getTput := measure(workers, sc.Ops/workers, func(w, i int) {
			tr.Get(keys[w][(i*61)%keysPerWorker])
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", workers),
			mops(getTput / float64(workers)), mops(putTput / float64(workers)),
			mops(getTput), mops(putTput),
		})
		if workers == maxW {
			break
		}
		if workers*2 > maxW {
			workers = maxW / 2 // land exactly on maxW next iteration
		}
	}
	return t
}
