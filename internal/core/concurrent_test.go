package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/value"
)

// TestConcurrentDisjointInserts has each goroutine insert its own key range;
// afterwards every key must be present exactly once ("no lost keys", §4.4).
func TestConcurrentDisjointInserts(t *testing.T) {
	tr := New()
	workers := 4 * runtime.GOMAXPROCS(0)
	perWorker := 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%02d-%06d", w, i))
				tr.Put(k, value.New(k))
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			k := []byte(fmt.Sprintf("w%02d-%06d", w, i))
			v, ok := tr.Get(k)
			if !ok || !bytes.Equal(v.Bytes(), k) {
				t.Fatalf("lost key %q", k)
			}
		}
	}
	checkInvariants(t, tr)
}

// TestConcurrentGetDuringInserts runs readers over a stable key set while
// writers insert around them: readers must always find the stable keys.
func TestConcurrentGetDuringInserts(t *testing.T) {
	tr := New()
	const stable = 2000
	for i := 0; i < stable; i++ {
		k := []byte(fmt.Sprintf("stable%06d", i))
		tr.Put(k, value.New(k))
	}
	var stop atomic.Bool
	var readers, writers sync.WaitGroup
	errs := make(chan string, 8)
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := []byte(fmt.Sprintf("stable%06d", rng.Intn(stable)))
				v, ok := tr.Get(k)
				if !ok || !bytes.Equal(v.Bytes(), k) {
					select {
					case errs <- fmt.Sprintf("reader lost %q", k):
					default:
					}
					return
				}
			}
		}(int64(r))
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 30000; i++ {
				k := []byte(fmt.Sprintf("churn-%d-%06d", w, i))
				tr.Put(k, value.New(k))
			}
		}(w)
	}
	writers.Wait()
	stop.Store(true)
	readers.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	checkInvariants(t, tr)
}

var seedCounter atomic.Int64

func nextSeed() int64 { return seedCounter.Add(1) }

// TestConcurrentMixedChurn runs put/get/remove over a small hot key space
// from many goroutines. Values always equal their key, so any read can be
// validated; afterwards the tree must be structurally sound and usable.
// Run with -race for full value.
func TestConcurrentMixedChurn(t *testing.T) {
	tr := New()
	workers := 2 * runtime.GOMAXPROCS(0)
	const space = 300
	const opsPer = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPer; i++ {
				k := []byte(fmt.Sprintf("hot%04d", rng.Intn(space)))
				switch rng.Intn(3) {
				case 0:
					tr.Put(k, value.New(k))
				case 1:
					if v, ok := tr.Get(k); ok && !bytes.Equal(v.Bytes(), k) {
						panic(fmt.Sprintf("wrong value for %q: %q", k, v.Bytes()))
					}
				case 2:
					tr.Remove(k)
				}
			}
		}(nextSeed())
	}
	wg.Wait()
	tr.Maintain()
	checkInvariants(t, tr)
	n := 0
	tr.Scan(nil, func(k []byte, v *value.Value) bool {
		if !bytes.Equal(v.Bytes(), k) {
			t.Fatalf("scan: wrong value for %q", k)
		}
		n++
		return true
	})
	if n != tr.Len() {
		t.Fatalf("scan found %d keys, Len says %d", n, tr.Len())
	}
	for i := 0; i < space; i++ {
		k := []byte(fmt.Sprintf("hot%04d", i))
		tr.Put(k, value.New(k))
	}
	for i := 0; i < space; i++ {
		k := []byte(fmt.Sprintf("hot%04d", i))
		if v, ok := tr.Get(k); !ok || !bytes.Equal(v.Bytes(), k) {
			t.Fatalf("post-churn put/get failed for %q", k)
		}
	}
}

// TestConcurrentLayerChurn hammers a single slice group so that layer
// creation (§4.6.3), layer descent, and removal all race.
func TestConcurrentLayerChurn(t *testing.T) {
	tr := New()
	workers := 2 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 8000; i++ {
				// All keys share the 8-byte prefix "sharedpf".
				k := []byte(fmt.Sprintf("sharedpf%03d", rng.Intn(40)))
				switch rng.Intn(3) {
				case 0:
					tr.Put(k, value.New(k))
				case 1:
					if v, ok := tr.Get(k); ok && !bytes.Equal(v.Bytes(), k) {
						panic("wrong value in layer churn")
					}
				case 2:
					tr.Remove(k)
				}
			}
		}(nextSeed())
	}
	wg.Wait()
	tr.Maintain()
	checkInvariants(t, tr)
}

// TestConcurrentScanDuringMutation checks that scans running against
// concurrent inserts/removes return keys in sorted order and always include
// keys that are never mutated.
func TestConcurrentScanDuringMutation(t *testing.T) {
	tr := New()
	const stable = 1000
	for i := 0; i < stable; i++ {
		k := []byte(fmt.Sprintf("stable%06d", i))
		tr.Put(k, value.New(k))
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn writer
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; !stop.Load(); i++ {
			k := []byte(fmt.Sprintf("churn%06d", rng.Intn(2000)))
			if i%2 == 0 {
				tr.Put(k, value.New(k))
			} else {
				tr.Remove(k)
			}
		}
	}()
	for s := 0; s < 30; s++ {
		var prev []byte
		found := 0
		tr.Scan(nil, func(k []byte, v *value.Value) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Errorf("scan out of order: %q then %q", prev, k)
				return false
			}
			prev = append(prev[:0], k...)
			if bytes.HasPrefix(k, []byte("stable")) {
				found++
			}
			return true
		})
		if found != stable {
			t.Fatalf("scan %d: found %d stable keys, want %d", s, found, stable)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestConcurrentRemoveInsertSlotReuse exercises the §4.6.5 hazard: a get
// that located a key must not return a different key's value after a remove
// frees the slot and an insert reuses it. Values always equal their key, so
// readers can detect a mismatched return.
func TestConcurrentRemoveInsertSlotReuse(t *testing.T) {
	tr := New()
	const space = 14 // keep everything in one border node
	var stop atomic.Bool
	var readers, writers sync.WaitGroup
	var failures atomic.Int64
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := []byte(fmt.Sprintf("slot%02d", rng.Intn(space)))
				if v, ok := tr.Get(k); ok && !bytes.Equal(v.Bytes(), k) {
					failures.Add(1)
					return
				}
			}
		}(int64(r + 100))
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50000; i++ {
				k := []byte(fmt.Sprintf("slot%02d", rng.Intn(space)))
				if i%2 == 0 {
					tr.Put(k, value.New(k))
				} else {
					tr.Remove(k)
				}
			}
		}(int64(w + 200))
	}
	writers.Wait()
	stop.Store(true)
	readers.Wait()
	if failures.Load() != 0 {
		t.Fatal("reader observed a value that was never written for its key")
	}
	if s := tr.Stats(); s.SlotReuses == 0 {
		t.Log("note: no slot reuse occurred; hazard weakly exercised")
	}
}

// TestConcurrentUpdateRMWAtomicity checks that Update read-modify-writes are
// atomic: concurrent increments of a counter must not lose updates.
func TestConcurrentUpdateRMWAtomicity(t *testing.T) {
	tr := New()
	workers := 4
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Update([]byte("counter"), func(old *value.Value) *value.Value {
					var n uint64
					if old != nil {
						n = uint64(old.Bytes()[0]) | uint64(old.Bytes()[1])<<8 |
							uint64(old.Bytes()[2])<<16 | uint64(old.Bytes()[3])<<24
					}
					n++
					buf := []byte{byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24)}
					return value.Apply(old, []value.ColPut{{Col: 0, Data: buf}})
				})
			}
		}()
	}
	wg.Wait()
	v, ok := tr.Get([]byte("counter"))
	if !ok {
		t.Fatal("counter missing")
	}
	got := uint64(v.Bytes()[0]) | uint64(v.Bytes()[1])<<8 | uint64(v.Bytes()[2])<<16 | uint64(v.Bytes()[3])<<24
	if got != uint64(workers*perWorker) {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*perWorker)
	}
	if v.Version() != uint64(workers*perWorker) {
		t.Fatalf("value version = %d, want %d", v.Version(), workers*perWorker)
	}
}
