package core

import (
	"sort"

	"repro/internal/value"
)

// GetBatch looks up many keys in one call — the paper's PALM-inspired
// batched lookup (§4.8). PALM sorts a batch of queries so lookups that
// touch nearby tree paths run back to back, overlapping their DRAM fetches;
// Go exposes no prefetch intrinsic, but processing keys in tree order still
// shares the upper tree levels' cache lines between consecutive descents.
// The paper measured up to +34% on an Intel machine and nothing on AMD, so
// this is an optional path; the ablation benchmark quantifies it here.
//
// Results are returned in input order: vals[i], found[i] correspond to
// keys[i].
func (t *Tree) GetBatch(keys [][]byte) (vals []*value.Value, found []bool) {
	n := len(keys)
	vals = make([]*value.Value, n)
	found = make([]bool, n)
	if n == 0 {
		return vals, found
	}
	// Order the batch by leading key slice (cheap proxy for tree order).
	idx := make([]int, n)
	slices := make([]uint64, n)
	for i, k := range keys {
		idx[i] = i
		slices[i] = keySlice(k)
	}
	sort.Slice(idx, func(a, b int) bool { return slices[idx[a]] < slices[idx[b]] })
	for _, i := range idx {
		vals[i], found[i] = t.Get(keys[i])
	}
	return vals, found
}
