// Package noalloc flags heap-allocation sources inside functions annotated
// //masstree:noalloc — the statically checkable face of the repository's
// AllocsPerRun pins. Where the benchmark pins say "a number regressed", this
// pass says "this line allocates".
//
// Flagged sources: make and new; composite literals that escape (&T{...},
// slice and map literals); string<->[]byte and []rune conversions (except
// the compiler-optimized map-index and comparison forms); string
// concatenation; closures that capture variables; interface conversions
// that box non-pointer-shaped values (in call arguments, assignments, and
// returns); method values; go statements; and any call into fmt, log, or
// errors.
//
// The check is intra-procedural by design: annotate the callees on the hot
// path too, and the suite holds the whole chain. Escapes the analysis gets
// wrong are suppressed with //lint:allow noalloc <reason>.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flag allocation sources in //masstree:noalloc functions",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.FuncFactsOf(fd).NoAlloc {
				continue
			}
			check(pass, fd)
		}
	}
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, info, parents, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, info, parents, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.Types[n.X].Type) {
				pass.Reportf(n.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && isString(info.Types[n.Lhs[0]].Type) {
				pass.Reportf(n.TokPos, "string concatenation allocates")
			}
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					checkBoxing(pass, info, info.Types[lhs].Type, n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			sig, ok := info.Defs[fd.Name].Type().(*types.Signature)
			if ok && sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					checkBoxing(pass, info, sig.Results().At(i).Type(), res)
				}
			}
		case *ast.FuncLit:
			if captured := captures(info, fd, n); captured != "" {
				pass.Reportf(n.Pos(), "closure captures %s and allocates", captured)
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates")
		case *ast.SelectorExpr:
			if s, ok := info.Selections[n]; ok && s.Kind() == types.MethodVal {
				if call, ok := parents[n].(*ast.CallExpr); !ok || call.Fun != n {
					pass.Reportf(n.Pos(), "method value allocates")
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, info *types.Info, parents map[ast.Node]ast.Node, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates")
			case "new":
				pass.Reportf(call.Pos(), "new allocates")
			}
			return
		}
	}

	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, info, parents, call, tv.Type)
		return
	}

	// Callee package blocklist.
	if callee := analysis.CalleeOf(info, call); callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "fmt", "log", "errors":
			pass.Reportf(call.Pos(), "%s.%s allocates", callee.Pkg().Name(), callee.Name())
			return
		}
	}

	// Interface boxing of arguments.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1 && call.Ellipsis == token.NoPos:
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, info, param, arg)
	}
}

// checkConversion flags string<->[]byte/[]rune conversions, excluding the
// forms the compiler performs without allocating: a []byte->string used
// directly as a map index or in a ==/!= comparison.
func checkConversion(pass *analysis.Pass, info *types.Info, parents map[ast.Node]ast.Node, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := info.Types[call.Args[0]].Type
	toString := isString(target) && isByteOrRuneSlice(src)
	fromString := isByteOrRuneSlice(target) && isString(src)
	if !toString && !fromString {
		return
	}
	if toString {
		switch p := parentExpr(parents, call).(type) {
		case *ast.IndexExpr:
			if p.Index == call {
				if _, ok := info.Types[p.X].Type.Underlying().(*types.Map); ok {
					return // m[string(b)]: no allocation
				}
			}
		case *ast.BinaryExpr:
			if p.Op == token.EQL || p.Op == token.NEQ {
				return // string(b) == s: no allocation
			}
		}
	}
	pass.Reportf(call.Pos(), "%s conversion allocates", target.String())
}

func parentExpr(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		if _, ok := p.(*ast.ParenExpr); !ok {
			return p
		}
		p = parents[p]
	}
}

func checkCompositeLit(pass *analysis.Pass, info *types.Info, parents map[ast.Node]ast.Node, lit *ast.CompositeLit) {
	typ := info.Types[lit].Type
	if typ == nil {
		return
	}
	switch typ.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates")
		return
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates")
		return
	}
	if u, ok := parents[lit].(*ast.UnaryExpr); ok && u.Op == token.AND {
		pass.Reportf(u.Pos(), "escaping composite literal allocates")
	}
}

// checkBoxing flags a concrete, non-pointer-shaped value converted to an
// interface; pointer-shaped values fit the interface word and nil converts
// for free.
func checkBoxing(pass *analysis.Pass, info *types.Info, dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	if types.IsInterface(tv.Type) || pointerShaped(tv.Type) {
		return
	}
	pass.Reportf(src.Pos(), "interface conversion boxes %s and allocates", tv.Type.String())
}

func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// captures names a variable of the enclosing function that the literal
// closes over, or "" when the literal is capture-free (and so static).
func captures(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		// Captured iff declared inside the enclosing function but outside
		// this literal.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
