// Package a is the atomicfield golden fixture: fields promoted to atomic by
// a sync/atomic address-taking call and then accessed plainly, the wrapper
// family that is safe by construction, and the version-word rule whose
// mutations belong in version.go (the sibling file in this fixture).
package a

import "sync/atomic"

type counters struct {
	hits   uint64
	misses uint64
}

func loadHits(c *counters) uint64 { // clean: the sanctioned access
	return atomic.LoadUint64(&c.hits)
}

func addHits(c *counters) { // clean
	atomic.AddUint64(&c.hits, 1)
}

func badPlainRead(c *counters) uint64 {
	return c.hits // want `plain access of field hits, which is accessed with sync/atomic elsewhere`
}

func badPlainWrite(c *counters) {
	c.hits = 0 // want `plain access of field hits, which is accessed with sync/atomic elsewhere`
}

func okMisses(c *counters) uint64 { // clean: misses is never accessed atomically
	return c.misses
}

type slots struct {
	lv [4]uint32
}

func loadSlot(s *slots, i int) uint32 { // clean: indexed sanctioned access
	return atomic.LoadUint32(&s.lv[i])
}

func badSlot(s *slots) uint32 {
	return s.lv[0] // want `plain access of field lv, which is accessed with sync/atomic elsewhere`
}

// The atomic.Uint64 wrapper family is atomic by construction and out of
// scope for the plain-access rule.
type wrapped struct {
	n atomic.Uint64
}

func wload(w *wrapped) uint64 { // clean
	return w.n.Load()
}

func winc(w *wrapped) { // clean: Add on a non-version field is fine anywhere
	w.n.Add(1)
}

// --- version-word rule: mutations belong in version.go ---

func badVersionStore(h *nodeHeader) {
	h.version.Store(1) // want `node version bits mutated outside version\.go; use the version\.go helpers`
}

func badVersionCAS(h *nodeHeader) bool {
	return h.version.CompareAndSwap(0, 1) // want `node version bits mutated outside version\.go; use the version\.go helpers`
}

func okVersionRead(h *nodeHeader) uint64 { // clean: reads are what optimistic readers do
	return h.version.Load()
}

func allowedVersion(h *nodeHeader) { // clean: the allow covers the mutation
	h.version.Store(2) //lint:allow atomicfield fixture exercising the suppression path
}
