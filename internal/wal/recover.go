package wal

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"repro/internal/vfs"
)

// LogFile describes one on-disk log file.
type LogFile struct {
	Path   string
	Worker int
	Gen    uint64
}

var logNameRE = regexp.MustCompile(`^log-(\d{4})\.(\d{6})\.wal$`)

// ListLogFilesFS enumerates the log files in dir.
func ListLogFilesFS(fsys vfs.FS, dir string) ([]LogFile, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []LogFile
	for _, e := range ents {
		m := logNameRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		worker, _ := strconv.Atoi(m[1])
		gen, _ := strconv.ParseUint(m[2], 10, 64)
		out = append(out, LogFile{Path: filepath.Join(dir, e.Name()), Worker: worker, Gen: gen})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Gen < out[j].Gen
	})
	return out, nil
}

// ListLogFiles is ListLogFilesFS on the real filesystem.
func ListLogFiles(dir string) ([]LogFile, error) {
	return ListLogFilesFS(vfs.OS{}, dir)
}

// RecoveryResult is the outcome of scanning a log directory.
type RecoveryResult struct {
	// Records holds all surviving records (timestamp <= Cutoff), grouped by
	// nothing in particular; use Replay to apply them in order.
	Records []Record
	// Cutoff is t = min over logs of the log's maximum durable timestamp
	// (§5). Records with larger timestamps were dropped: some worker may not
	// have made them durable, so the highest consistent prefix ends at t.
	// The maximum (not the final record's timestamp) is used because
	// sessions sharing a worker log may interleave appends slightly out of
	// timestamp order, and per-worker clocks only order records per key.
	Cutoff uint64
	// MaxTS is the largest timestamp seen anywhere (before cutoff
	// filtering); the store's clock must resume above it.
	MaxTS uint64
	// MaxGen is the largest log generation present.
	MaxGen uint64
	// MissingLogs counts log files the directory's logset said to expect
	// but that are absent — logs that vanished wholesale, as opposed to
	// workers that never logged (their files exist, possibly empty). A
	// vanished log contributes no constraint to the cutoff, so without
	// this count its loss would be invisible; with it, the operator knows
	// recovery ran against an incomplete directory even if every replay
	// chain happened to validate. Zero when the directory has no
	// (parseable) logset.
	MissingLogs int
}

// RecoverDirFS reads every log file in dir and computes the recovery
// cutoff. Log files are read and parsed concurrently (one goroutine per
// file) so a multi-log restart uses every core, mirroring the paper's
// parallel log replay.
//
// Per the paper, t = min over logs L of max timestamp in L, so that only
// updates every log had made durable (or that precede such updates) are
// replayed. A worker whose current-generation log is empty contributes no
// constraint: it durably logged nothing, so it cannot have acknowledged
// anything that others would depend on.
func RecoverDirFS(fsys vfs.FS, dir string) (*RecoveryResult, error) {
	return RecoverDirAboveFS(fsys, dir, 0)
}

// RecoverDirAboveFS is RecoverDirFS considering only records with
// timestamps above floor for both the surviving set and the cutoff
// computation. The store passes the loaded (manifest-format) checkpoint's
// start timestamp: every record at or below it is fully reflected in the
// checkpoint, so such records neither need replaying nor constitute
// durability evidence — in particular, a reclaimed old-generation log that
// a crash resurrected (its removal was a volatile directory op) holds only
// pre-checkpoint records and must not drag the cutoff below the durable
// post-checkpoint tail of busier logs. MaxTS still reports the maximum over
// all records, floor included, for clock seeding.
func RecoverDirAboveFS(fsys vfs.FS, dir string, floor uint64) (*RecoveryResult, error) {
	files, err := ListLogFilesFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	res := &RecoveryResult{Cutoff: ^uint64(0)}
	// Read and parse every file concurrently.
	parsed := make([][]Record, len(files))
	errs := make([]error, len(files))
	var wg sync.WaitGroup
	for i, lf := range files {
		wg.Add(1)
		go func(i int, lf LogFile) {
			defer wg.Done()
			b, err := fsys.ReadFile(lf.Path)
			if err != nil {
				errs[i] = err
				return
			}
			recs, err := parseLog(b)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", lf.Path, err)
				return
			}
			parsed[i] = recs
		}(i, lf)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	// Count logs the directory's logset expected but the listing lacks
	// (see logset.go; no logset means no check).
	if workers, gen, ok := readLogSet(fsys, dir); ok {
		present := make(map[int]bool, workers)
		for _, lf := range files {
			if lf.Gen == gen {
				present[lf.Worker] = true
			}
		}
		for w := 0; w < workers; w++ {
			if !present[w] {
				res.MissingLogs++
			}
		}
	}
	// Concatenate each worker's generations in order (ListLogFilesFS sorts
	// by worker then generation), then treat the result as that worker's
	// single log. Each record is tagged with the worker whose log held it,
	// so replay can rebuild values with their worker tags intact.
	perWorker := map[int][]Record{}
	for i, lf := range files {
		if lf.Gen > res.MaxGen {
			res.MaxGen = lf.Gen
		}
		for j := range parsed[i] {
			parsed[i][j].Worker = lf.Worker
		}
		perWorker[lf.Worker] = append(perWorker[lf.Worker], parsed[i]...)
	}
	constrained := false
	for _, recs := range perWorker {
		logMax := uint64(0)
		for _, r := range recs {
			if r.TS > res.MaxTS {
				res.MaxTS = r.TS // global max: floor does not apply
			}
			if r.TS > floor && r.TS > logMax {
				logMax = r.TS
			}
		}
		if logMax == 0 {
			// Nothing above the floor: this worker's durable records are
			// all superseded by the checkpoint, so — like an empty log —
			// it cannot have acknowledged anything others depend on.
			continue
		}
		if logMax < res.Cutoff {
			res.Cutoff = logMax
		}
		constrained = true
	}
	if !constrained {
		res.Cutoff = 0
	}
	for _, recs := range perWorker {
		for _, r := range recs {
			if r.Op != OpMark && r.TS > floor && r.TS <= res.Cutoff {
				res.Records = append(res.Records, r)
			}
		}
	}
	return res, nil
}

// RecoverDir is RecoverDirFS on the real filesystem.
func RecoverDir(dir string) (*RecoveryResult, error) {
	return RecoverDirFS(vfs.OS{}, dir)
}

// Mark appends a timestamp heartbeat to every log (see OpMark).
func (s *Set) Mark(ts uint64) {
	for _, w := range s.writers {
		w.Append(&Record{TS: ts, Op: OpMark})
	}
}

// Replay applies the surviving records through apply, in increasing version
// order per key, partitioned across parallel goroutines by key so a value's
// updates stay ordered (§5: "plays back the logged updates in parallel,
// taking care to apply a value's updates in increasing order by version").
//
// apply receives records for one key in strictly increasing TS order.
func (r *RecoveryResult) Replay(parallelism int, apply func(Record)) {
	r.ReplayByKey(parallelism, func(recs []Record) {
		for _, rec := range recs {
			apply(rec)
		}
	})
}

// ReplayByKey is Replay handing apply each key's full record sequence at
// once (sorted by increasing TS), so a chain-validating loader can carry
// per-key state — a broken prev link, the last anchored prefix — across the
// key's records without a global map.
func (r *RecoveryResult) ReplayByKey(parallelism int, apply func(recs []Record)) {
	if parallelism < 1 {
		parallelism = 1
	}
	// Group records by key.
	byKey := map[string][]Record{}
	for _, rec := range r.Records {
		byKey[string(rec.Key)] = append(byKey[string(rec.Key)], rec)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		sort.Slice(byKey[k], func(i, j int) bool { return byKey[k][i].TS < byKey[k][j].TS })
		keys = append(keys, k)
	}
	var wg sync.WaitGroup
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(keys); i += parallelism {
				apply(byKey[keys[i]])
			}
		}(p)
	}
	wg.Wait()
}
