package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		d time.Duration
		b int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {time.Second, 29},
	}
	for _, c := range cases {
		if got := Bucket(c.d); got != c.b {
			t.Errorf("Bucket(%d) = %d, want %d", c.d, got, c.b)
		}
	}
	// Every bucket's low bound maps back into that bucket.
	for b := 1; b < NumBuckets-1; b++ {
		if got := Bucket(time.Duration(BucketLow(b))); got != b {
			t.Errorf("Bucket(BucketLow(%d)) = %d", b, got)
		}
	}
}

func TestHistRecordSnapshotQuantile(t *testing.T) {
	h := NewHist("get", 4)
	// 100 samples at ~1µs, 10 at ~1ms, 1 at ~1s, spread across workers.
	for i := 0; i < 100; i++ {
		h.Record(i, time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(i, time.Millisecond)
	}
	h.Record(0, time.Second)
	s := h.Snapshot()
	if got := s.Count(); got != 111 {
		t.Fatalf("count = %d, want 111", got)
	}
	if p50 := s.Quantile(0.50); p50 < 512 || p50 > 2048 {
		t.Errorf("p50 = %dns, want ~1µs", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 512<<10 || p99 > 2048<<10 {
		t.Errorf("p99 = %dns, want ~1ms", p99)
	}
	if p999 := s.Quantile(0.999); p999 < 1<<29 || p999 > 1<<31 {
		t.Errorf("p999 = %dns, want ~1s", p999)
	}
	if mean := s.Mean(); mean == 0 {
		t.Errorf("mean = 0, want > 0")
	}
	if s.Quantile(0) == 0 || s.Quantile(1) == 0 {
		t.Errorf("edge quantiles must report a bucket midpoint, got %d and %d",
			s.Quantile(0), s.Quantile(1))
	}
}

func TestHistNilSafe(t *testing.T) {
	var h *Hist
	h.Record(3, time.Millisecond) // must not panic
	if s := h.Snapshot(); s.Count() != 0 {
		t.Fatalf("nil hist snapshot count = %d", s.Count())
	}
	var r *Registry
	r.Hist(HGet).Record(0, time.Second)
	r.Recorder().Record(0, EvEvict, 1, 2)
	if r.Hist(HPut) != nil || r.Recorder() != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	var rec *Recorder
	rec.Record(1, EvEvict, 0, 0)
	if ev := rec.Events(); ev != nil {
		t.Fatalf("nil recorder events = %v", ev)
	}
}

func TestHistMergeMatchesCombined(t *testing.T) {
	a, b, both := NewHist("x", 2), NewHist("x", 2), NewHist("x", 2)
	durs := []time.Duration{100, 10_000, 1_000_000, 3, 70_000_000}
	for i, d := range durs {
		if i%2 == 0 {
			a.Record(i, d)
		} else {
			b.Record(i, d)
		}
		both.Record(i, d)
	}
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	sb := both.Snapshot()
	if sa.Buckets != sb.Buckets || sa.Sum != sb.Sum {
		t.Fatalf("merge mismatch: %+v vs %+v", sa, sb)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if sa.Quantile(q) != sb.Quantile(q) {
			t.Errorf("q%.3f: merged %d vs combined %d", q, sa.Quantile(q), sb.Quantile(q))
		}
	}
}

func TestHistConcurrent(t *testing.T) {
	h := NewHist("put", 8)
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(g, time.Duration(1+i%4096))
				if i%64 == 0 {
					_ = h.Snapshot() // snapshots race with recording by design
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count(); got != 8*perG {
		t.Fatalf("count = %d, want %d", got, 8*perG)
	}
}

// The histogram and recorder record paths are the instruments inside the
// 0-alloc pinned hot paths — they must allocate nothing themselves.
func TestRecordPathsAllocFree(t *testing.T) {
	h := NewHist("get", 4)
	if n := testing.AllocsPerRun(1000, func() { h.Record(2, 1500*time.Nanosecond) }); n != 0 {
		t.Fatalf("Hist.Record allocates %.1f/op, want 0", n)
	}
	rec := NewRecorder(4, 64)
	if n := testing.AllocsPerRun(1000, func() { rec.Record(1, EvEvict, 42, 128) }); n != 0 {
		t.Fatalf("Recorder.Record allocates %.1f/op, want 0", n)
	}
	key := []byte("some-key-material")
	if n := testing.AllocsPerRun(1000, func() { _ = KeyHash(key) }); n != 0 {
		t.Fatalf("KeyHash allocates %.1f/op, want 0", n)
	}
	r := NewRegistry(4)
	if n := testing.AllocsPerRun(1000, func() {
		r.Hist(HGet).Record(0, time.Microsecond)
		r.Recorder().Record(0, EvFlushRetry, 1, 2)
	}); n != 0 {
		t.Fatalf("Registry record path allocates %.1f/op, want 0", n)
	}
}

func TestRecorderRingOverwriteAndOrder(t *testing.T) {
	rec := NewRecorder(2, 4)
	for i := 0; i < 10; i++ {
		rec.Record(i%2, EvEvict, uint64(i), 0)
	}
	ev := rec.Events()
	if len(ev) != 8 { // 2 rings × 4 retained
		t.Fatalf("retained %d events, want 8", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].TS < ev[i-1].TS {
			t.Fatalf("events out of order at %d: %d < %d", i, ev[i].TS, ev[i-1].TS)
		}
	}
	// The oldest two events per ring (args 0..3 round-robined) were overwritten.
	for _, e := range ev {
		if e.Arg1 < 2 {
			t.Fatalf("event arg1=%d should have been overwritten", e.Arg1)
		}
	}
}

func TestRecorderDump(t *testing.T) {
	rec := NewRecorder(1, 8)
	rec.Record(0, EvBreakerOpen, 3, 0)
	rec.Record(0, EvCkptCommit, 77, 1000)
	s := rec.DumpString()
	for _, want := range []string{"breaker_open", "ckpt_commit", "arg1=4d", "arg2=1000"} {
		if !strings.Contains(s, want) {
			t.Errorf("dump missing %q:\n%s", want, s)
		}
	}
	var nilRec *Recorder
	if got := nilRec.DumpString(); !strings.Contains(got, "disabled") {
		t.Errorf("nil dump = %q", got)
	}
}

func TestAppendStatsAndRecompute(t *testing.T) {
	h := NewHist("get", 2)
	for i := 0; i < 90; i++ {
		h.Record(0, time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(1, time.Millisecond)
	}
	stats := AppendStats(nil, h.Snapshot())
	m := map[string]int64{}
	for _, st := range stats {
		if st.Value < 0 {
			t.Errorf("%s = %d, stats must be non-negative here", st.Name, st.Value)
		}
		m[st.Name] = st.Value
	}
	if m["lat_get_count"] != 100 {
		t.Fatalf("lat_get_count = %d", m["lat_get_count"])
	}
	if m["lat_get_b9"] != 90 || m["lat_get_b19"] != 10 {
		t.Fatalf("bucket keys wrong: %v", m)
	}

	// Simulate a two-node aggregate: every numeric key summed, then repaired.
	agg := map[string]int64{}
	for k, v := range m {
		agg[k] = 2 * v
	}
	RecomputeQuantiles(agg)
	if agg["lat_get_count"] != 200 {
		t.Fatalf("aggregated count = %d, want 200", agg["lat_get_count"])
	}
	if p50 := agg["lat_get_p50"]; p50 != m["lat_get_p50"] {
		t.Fatalf("aggregate p50 %d must match per-node p50 %d (same shape)", p50, m["lat_get_p50"])
	}
	if p999 := agg["lat_get_p999"]; p999 != m["lat_get_p999"] {
		t.Fatalf("aggregate p999 %d vs %d", p999, m["lat_get_p999"])
	}
	// Every derived key parses as a base-10 integer (v1 stats contract).
	for k, v := range agg {
		if _, err := strconv.ParseInt(strconv.FormatInt(v, 10), 10, 64); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
	}
}

func TestBucketKeyParsing(t *testing.T) {
	cases := []struct {
		k    string
		stem string
		b    int
		ok   bool
	}{
		{"lat_get_b7", "lat_get", 7, true},
		{"lat_get_batch_b12", "lat_get_batch", 12, true},
		{"lat_get_batch_p50", "", 0, false},
		{"lat_get_sum", "", 0, false},
		{"keys", "", 0, false},
		{"lat_get_b999", "", 0, false},
	}
	for _, c := range cases {
		stem, b, ok := bucketKey(c.k)
		if stem != c.stem || b != c.b || ok != c.ok {
			t.Errorf("bucketKey(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.k, stem, b, ok, c.stem, c.b, c.ok)
		}
	}
}

func TestWriteProm(t *testing.T) {
	h := NewHist("get", 1)
	h.Record(0, time.Microsecond)
	h.Record(0, time.Microsecond)
	h.Record(0, time.Millisecond)
	var b strings.Builder
	if err := WriteProm(&b, h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE masstree_lat_get_ns histogram",
		`masstree_lat_get_ns_bucket{le="1024"} 2`,
		`masstree_lat_get_ns_bucket{le="+Inf"} 3`,
		"masstree_lat_get_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySnapshots(t *testing.T) {
	r := NewRegistry(2)
	r.Hist(HPut).Record(0, time.Microsecond)
	snaps := r.Snapshots()
	if len(snaps) != int(NumHists) {
		t.Fatalf("snapshots = %d, want %d", len(snaps), NumHists)
	}
	if snaps[HPut].Count() != 1 || snaps[HPut].Name != "put" {
		t.Fatalf("put snapshot wrong: %+v", snaps[HPut])
	}
	for id := HistID(0); id < NumHists; id++ {
		if histNames[id] == "" {
			t.Fatalf("hist %d has no name", id)
		}
	}
}
