package cache

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// drive pushes one get-or-admit step through the policy the way the store
// does: hit → access note; miss → account + admit, then maintain (drain +
// evict) with evictions applied to the model set.
type policySim struct {
	c     *Cache
	model map[string]bool
	size  int64
	hits  int
	total int
}

func newPolicySim(maxBytes int, size int64) *policySim {
	return &policySim{c: New(1, maxBytes), model: map[string]bool{}, size: size}
}

func (ps *policySim) step(key []byte) {
	ps.total++
	if ps.model[string(key)] {
		ps.hits++
		ps.c.NoteAccess(0, key)
		return
	}
	ps.model[string(key)] = true
	ps.c.Account(0, ps.size)
	ps.c.NotePut(0, key, int(ps.size))
	ps.c.Maintain(func(k []byte) bool {
		if !ps.model[string(k)] {
			return false
		}
		delete(ps.model, string(k))
		ps.c.Account(-1, -ps.size)
		return true
	})
}

// fifoSim is the plain-FIFO reference cache the acceptance criterion
// compares against: same trace, same byte budget, evict strictly oldest.
type fifoSim struct {
	set      map[string]bool
	queue    []string
	head     int
	size     int64
	maxBytes int64
	used     int64
	hits     int
	total    int
}

func (fs *fifoSim) step(key []byte) {
	fs.total++
	if fs.set[string(key)] {
		fs.hits++
		return
	}
	fs.set[string(key)] = true
	fs.queue = append(fs.queue, string(key))
	fs.used += fs.size
	for fs.used > fs.maxBytes && fs.head < len(fs.queue) {
		old := fs.queue[fs.head]
		fs.head++
		if fs.set[old] {
			delete(fs.set, old)
			fs.used -= fs.size
		}
	}
}

// TestS3FIFOBeatsPlainFIFOOnZipfian is the policy half of the acceptance
// criterion: on the same over-capacity zipfian trace, the S3-FIFO policy's
// hit rate must beat a plain FIFO of the same byte budget. Zipfian traffic
// under theta 0.99 has a hot head that FIFO keeps flushing out with every
// burst of cold keys; S3-FIFO's probationary small queue sheds the cold
// tail while ghost hits route the recurring head into main.
func TestS3FIFOBeatsPlainFIFOOnZipfian(t *testing.T) {
	const (
		valSize  = 1024
		capacity = 400 * valSize // ~400 resident values
		nkeys    = 4000          // 10x over capacity
		ops      = 120_000
	)
	zipf := workload.ZipfKeys(42, nkeys)
	s3 := newPolicySim(capacity, valSize)
	fifo := &fifoSim{set: map[string]bool{}, size: valSize, maxBytes: capacity}
	for i := 0; i < ops; i++ {
		k := zipf.Next()
		s3.step(k)
		fifo.step(k)
	}
	s3Rate := float64(s3.hits) / float64(s3.total)
	fifoRate := float64(fifo.hits) / float64(fifo.total)
	t.Logf("hit rate: s3-fifo %.4f, plain fifo %.4f (%d ops, %d keys, %d resident)",
		s3Rate, fifoRate, ops, nkeys, capacity/valSize)
	if s3Rate <= fifoRate {
		t.Fatalf("S3-FIFO hit rate %.4f does not beat plain FIFO %.4f on the same zipfian trace", s3Rate, fifoRate)
	}
	st := s3.c.Stats()
	if st.Evictions == 0 || st.GhostHits == 0 {
		t.Fatalf("policy under-exercised: %+v", st)
	}
	// The simulated store honored the budget after every maintain pass.
	if live := s3.c.BytesLive(); live > capacity {
		t.Fatalf("bytes live %d exceeds capacity %d after maintain", live, capacity)
	}
}

// TestAccountingShards verifies worker-sharded accounting sums correctly,
// including the reserved maintenance shard (worker -1 and out-of-range ids).
func TestAccountingShards(t *testing.T) {
	c := New(4, 0)
	c.Account(0, 100)
	c.Account(3, 50)
	c.Account(-1, 25)
	c.Account(99, 25) // out of range: reserved shard
	if got := c.BytesLive(); got != 200 {
		t.Fatalf("BytesLive = %d, want 200", got)
	}
	c.Account(3, -50)
	if got := c.BytesLive(); got != 150 {
		t.Fatalf("BytesLive = %d, want 150", got)
	}
	if c.EvictionEnabled() {
		t.Fatal("eviction should be disabled at maxBytes 0")
	}
	// With eviction disabled the policy entry points are inert no-ops.
	c.NotePut(0, []byte("k"), 10)
	c.NoteAccess(0, []byte("k"))
	c.NoteRemove(0, []byte("k"))
	c.Maintain(func([]byte) bool { t.Fatal("evicted without a budget"); return false })
	c.Seed([]byte("k"), 10)
}

// TestGhostPromotion pins the S3-FIFO second chance: a key evicted from the
// small queue and re-admitted while its hash is in ghost goes straight to
// main and survives a subsequent cold-key flood that would have evicted it
// from small.
func TestGhostPromotion(t *testing.T) {
	const valSize = 100
	c := New(1, 10*valSize)
	live := map[string]bool{}
	evict := func(k []byte) bool {
		if !live[string(k)] {
			return false
		}
		delete(live, string(k))
		c.Account(-1, -valSize)
		return true
	}
	put := func(k string) {
		if !live[k] {
			live[k] = true
			c.Account(0, valSize)
		}
		c.NotePut(0, []byte(k), valSize)
		c.Maintain(evict)
	}
	put("victim")
	for i := 0; i < 20; i++ { // flood: evicts victim from small
		put(fmt.Sprintf("cold-%02d", i))
	}
	if live["victim"] {
		t.Fatal("victim survived the first flood; test premise broken")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	put("victim") // ghost hit: straight to main
	if c.Stats().GhostHits != 1 {
		t.Fatalf("ghost hits = %d, want 1", c.Stats().GhostHits)
	}
	for i := 0; i < 8; i++ { // flood again, with the victim kept hot
		c.NoteAccess(0, []byte("victim"))
		put(fmt.Sprintf("cold2-%02d", i))
	}
	if !live["victim"] {
		t.Fatal("ghost-promoted key evicted by a small flood main should have shielded it from")
	}
}

// TestRemoveForgets verifies an explicit remove clears the policy's entry
// so the eviction scan never hands the store a key it already dropped.
func TestRemoveForgets(t *testing.T) {
	c := New(1, 1000)
	c.Account(0, 400)
	c.NotePut(0, []byte("a"), 400)
	c.Maintain(func([]byte) bool { t.Fatal("unexpected evict"); return false })
	c.Account(0, -400)
	c.NoteRemove(0, []byte("a"))
	// Push over budget with new keys; "a" must never be offered for
	// eviction even though it was admitted earlier.
	evicted := map[string]bool{}
	live := int64(400 * 3)
	c.Account(0, live)
	for _, k := range []string{"b", "c", "d"} {
		c.NotePut(0, []byte(k), 400)
	}
	c.Maintain(func(k []byte) bool {
		if string(k) == "a" {
			t.Fatal("evicted a removed key")
		}
		evicted[string(k)] = true
		c.Account(-1, -400)
		return true
	})
	if len(evicted) == 0 {
		t.Fatal("no evictions despite being over budget")
	}
}

// TestRingOverflowDrops verifies a stuffed admission ring sheds events
// (counted in stats) instead of growing without bound between drains.
func TestRingOverflowDrops(t *testing.T) {
	c := New(1, 1<<30)
	key := []byte("k")
	for i := 0; i < maxRingEvents+10; i++ {
		c.NotePut(0, key, 1)
	}
	if drops := c.Stats().AdmitDrops; drops != 10 {
		t.Fatalf("admit drops = %d, want 10", drops)
	}
	r := &c.rings[0]
	r.mu.Lock()
	n := len(r.ev)
	r.mu.Unlock()
	if n != maxRingEvents {
		t.Fatalf("ring holds %d events, want the cap %d", n, maxRingEvents)
	}
}

// TestHashZeroReserved pins the zero-hash remap the access rings rely on.
func TestHashZeroReserved(t *testing.T) {
	if Hash(nil) == 0 || Hash([]byte{}) == 0 {
		t.Fatal("empty-key hash is the reserved 0")
	}
	if Hash([]byte("a")) == Hash([]byte("b")) {
		t.Fatal("trivial collision")
	}
}
