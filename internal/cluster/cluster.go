// Package cluster is the client-side sharding layer: a Cluster
// consistent-hashes keys across N masstree servers and speaks pipelined
// protocol v2 to each through a small per-node connection pool. One process
// is the ceiling no matter how fast the tree gets; the cluster layer is how
// many stores serve one keyspace.
//
// Failure is a first-class input, not an afterthought:
//
//   - Per-node health follows the breaker pattern (internal/backend/wrap.go):
//     NodeFailures consecutive transport failures trip a node to Down, after
//     which operations against its shard fail fast with ErrNodeDown — no
//     dial, no timeout wait, no goroutine parked — until the cool-down
//     lapses and the probe loop's dial+ping succeeds (Probing→Up). A healed
//     node rejoins with zero client restarts.
//   - Every pooled connection carries the cluster's OpTimeout as its
//     per-batch I/O deadline and DialTimeout over connect+hello, so a
//     blackholed or frozen node costs at most one timeout budget per
//     connection before the breaker takes over.
//   - ReadFailover (off by default) retries idempotent reads once on the
//     ring successor when the owner is down or fails mid-read. For a
//     sharded cache this is a *degraded* answer — the successor may miss
//     keys the owner holds, and GetOrLoad installs a secondary copy — so it
//     trades strict shard ownership for availability; leave it off when
//     tests assert "only the owner ever answers".
//   - HedgeAfter (off by default) arms hedged reads: if the owner has not
//     answered an idempotent read within the threshold, a second attempt is
//     launched on a different pooled connection to the same node and the
//     first answer wins. This defends against per-connection pathologies —
//     a flow orphaned by a partition, head-of-line blocking behind a deep
//     batch, a lossy path — without ever consulting the wrong shard.
//
// Batches shard transparently: GetBatch/PutBatch (and the general Do)
// split a request batch by owner, fan the sub-batches out concurrently,
// and merge replies back into request order. A batch that lands entirely
// on one node is forwarded verbatim — which is why a Cluster over a single
// node is byte-for-byte equivalent to a plain client.Conn (pinned by
// TestClusterSingleNodeEquivalence).
package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Config sizes and arms a Cluster. The zero value of every field picks a
// conservative default; only Addrs is required.
type Config struct {
	// Addrs are the node addresses. Order defines node indices in stats;
	// ring positions follow the address strings, not the order.
	Addrs []string
	// VirtualNodes per node on the hash ring (0 = DefaultVirtualNodes).
	VirtualNodes int
	// PoolSize is connections per node (0 = 2). Two is the useful minimum
	// once hedged reads are armed: the hedge wants distinct TCP state.
	PoolSize int
	// Window is the per-connection in-flight batch bound (0 = client
	// default).
	Window int
	// DialTimeout bounds connect+hello per dial attempt (0 = 2s). This is
	// what keeps a blackholed address from hanging pool fills and probes.
	DialTimeout time.Duration
	// OpTimeout is the per-batch I/O deadline on every pooled connection
	// (0 = 5s): a frozen node fails all its in-flight operations within
	// this budget.
	OpTimeout time.Duration
	// NodeFailures is the consecutive-transport-failure threshold that
	// trips a node Down (0 = 3).
	NodeFailures int
	// DownFor is how long a tripped node stays Down before the probe loop
	// may test it (0 = 1s).
	DownFor time.Duration
	// ProbeInterval is the health loop period (0 = 100ms).
	ProbeInterval time.Duration
	// ReadFailover, when true, retries idempotent reads once on the ring
	// successor after an owner failure (see the package comment's caveat).
	ReadFailover bool
	// HedgeAfter, when > 0, launches a second same-node attempt for
	// idempotent reads that have not answered within the threshold.
	HedgeAfter time.Duration
}

func (cfg *Config) withDefaults() error {
	if len(cfg.Addrs) == 0 {
		return errors.New("cluster: no addresses")
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 5 * time.Second
	}
	if cfg.NodeFailures <= 0 {
		cfg.NodeFailures = 3
	}
	if cfg.DownFor <= 0 {
		cfg.DownFor = time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 100 * time.Millisecond
	}
	return nil
}

// Cluster routes operations across the ring. All methods are safe for
// concurrent use. Construction is purely local (no network I/O): pools
// fill lazily, so a cluster over a currently-dark node constructs
// instantly and the node simply trips Down on first use.
type Cluster struct {
	cfg   Config
	ring  *Ring
	nodes []*node

	stats clusterCounters

	// rpcHist shards per *node index* (not per worker): shard i is node i's
	// RPC latency, so ShardSnapshot(i) answers "how slow is shard i" while
	// Snapshot() answers "how slow is the cluster". rec traces node health
	// transitions (Down/Probing/Up), one ring per node.
	rpcHist *obs.Hist
	rec     *obs.Recorder

	stop chan struct{}
	done chan struct{}
}

// New builds a Cluster over cfg.Addrs and starts its health-probe loop.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:  cfg,
		ring: NewRing(cfg.Addrs, cfg.VirtualNodes),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.rpcHist = obs.NewHist("rpc", len(cfg.Addrs))
	c.rec = obs.NewRecorder(len(cfg.Addrs), 0)
	for i, addr := range cfg.Addrs {
		n := newNode(addr, &c.cfg)
		n.idx = i
		n.rec = c.rec
		c.nodes = append(c.nodes, n)
	}
	go c.probeLoop()
	return c, nil
}

// Recorder exposes the cluster's flight recorder: the timeline of node
// health transitions (down/probing/up), one ring per node. Torture
// harnesses dump it on first failure.
func (c *Cluster) Recorder() *obs.Recorder { return c.rec }

// RPCSnapshot copies node i's RPC latency histogram (the whole cluster's
// for i < 0).
func (c *Cluster) RPCSnapshot(i int) obs.HistSnapshot {
	if i < 0 {
		return c.rpcHist.Snapshot()
	}
	return c.rpcHist.ShardSnapshot(i)
}

// Close stops the probe loop and closes every pooled connection.
func (c *Cluster) Close() {
	close(c.stop)
	<-c.done
	for _, n := range c.nodes {
		n.close()
	}
}

// probeLoop periodically offers Down nodes a recovery probe. One loop for
// the whole cluster: recovery is decided by a single dial+ping per node
// per interval, never by a herd of failing operations.
func (c *Cluster) probeLoop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			for _, n := range c.nodes {
				if n.state.Load() == NodeDown {
					n.probe()
				}
			}
		}
	}
}

// Owner exposes the ring's key→node-index mapping (tests and operators
// both want to ask "who owns this key").
func (c *Cluster) Owner(key []byte) int { return c.ring.Owner(key) }

// Ring exposes the deterministic hash ring itself.
func (c *Cluster) Ring() *Ring { return c.ring }

// exec runs one request batch against node n over a pooled connection and
// returns cloned (caller-owned) responses. Transport failures feed the
// node's breaker; protocol-level statuses do not.
func (c *Cluster) exec(n *node, reqs []wire.Request) ([]wire.Response, error) {
	conn, err := n.conn()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	p := conn.Go(reqs)
	resps, err := p.Wait()
	c.rpcHist.Record(n.idx, time.Since(start))
	if err != nil {
		p.Release()
		n.feedback(conn, err)
		return nil, fmt.Errorf("cluster: node %s: %w", n.addr, err)
	}
	out := cloneResponses(resps)
	p.Release()
	n.feedback(conn, nil)
	return out, nil
}

// Do executes a mixed request batch, routing each request to its key's
// owner: requests are grouped by owner (preserving relative order within
// each node's sub-batch, which keeps the server's run-batching effective),
// the groups fan out concurrently, and replies merge back into request
// order. With a single owner the batch is forwarded verbatim.
//
// On a per-node failure the whole call returns that node's error; requests
// routed to other nodes still executed (puts may have applied). Callers
// needing partial results should shard their batches themselves.
func (c *Cluster) Do(reqs []wire.Request) ([]wire.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	// Fast path: one owner for the whole batch (always true for N=1).
	first := c.ring.Owner(reqs[0].Key)
	single := true
	for i := 1; i < len(reqs); i++ {
		if c.ring.Owner(reqs[i].Key) != first {
			single = false
			break
		}
	}
	if single {
		return c.exec(c.nodes[first], reqs)
	}

	c.stats.splitBatches.Add(1)
	groups := make(map[int][]int) // node -> request indices, in order
	for i := range reqs {
		o := c.ring.Owner(reqs[i].Key)
		groups[o] = append(groups[o], i)
	}
	out := make([]wire.Response, len(reqs))
	errCh := make(chan error, len(groups))
	for o, idxs := range groups {
		go func(o int, idxs []int) {
			sub := make([]wire.Request, len(idxs))
			for j, i := range idxs {
				sub[j] = reqs[i]
			}
			resps, err := c.exec(c.nodes[o], sub)
			if err == nil {
				for j, i := range idxs {
					out[i] = resps[j]
				}
			}
			errCh <- err
		}(o, idxs)
	}
	var firstErr error
	for range groups {
		if err := <-errCh; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return out, firstErr
	}
	return out, nil
}

// readOne executes one idempotent single-key read with hedging and (if
// configured) one failover retry on the ring successor.
func (c *Cluster) readOne(req wire.Request) (wire.Response, error) {
	owner := c.ring.Owner(req.Key)
	resp, err := c.hedgedRead(c.nodes[owner], req)
	if err != nil && c.cfg.ReadFailover {
		if succ := c.ring.Successor(owner); succ != owner {
			c.stats.failovers.Add(1)
			if r2, err2 := c.exec(c.nodes[succ], []wire.Request{req}); err2 == nil {
				return r2[0], nil
			}
		}
	}
	return resp, err
}

// execFresh runs one request batch over a brand-new connection, bypassing
// the pool — the hedge path. On success the connection is donated to the
// pool (it is proven good; the slot a timing-out connection is about to
// vacate gets a warm replacement).
func (c *Cluster) execFresh(n *node, reqs []wire.Request) ([]wire.Response, error) {
	conn, err := n.dialFresh()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	p := conn.Go(reqs)
	resps, err := p.Wait()
	c.rpcHist.Record(n.idx, time.Since(start))
	if err != nil {
		p.Release()
		conn.Close()
		n.feedback(nil, err)
		return nil, fmt.Errorf("cluster: node %s (hedge): %w", n.addr, err)
	}
	out := cloneResponses(resps)
	p.Release()
	n.feedback(nil, nil)
	n.donate(conn)
	return out, nil
}

// hedgedRead runs req against n; if the pooled attempt has not answered
// within HedgeAfter, a second attempt is launched on a fresh connection
// and the first *successful* answer wins (fresh TCP state is the point:
// the pooled flow may be orphaned by a partition or stuck behind a deep
// batch, while a new dial routes fine). If every attempt fails, the last
// error is returned. With hedging unarmed it is a plain exec.
func (c *Cluster) hedgedRead(n *node, req wire.Request) (wire.Response, error) {
	reqs := []wire.Request{req}
	if c.cfg.HedgeAfter <= 0 {
		resps, err := c.exec(n, reqs)
		if err != nil {
			return wire.Response{}, err
		}
		return resps[0], nil
	}
	type attempt struct {
		resps []wire.Response
		err   error
		hedge bool
	}
	ch := make(chan attempt, 2) // buffered: the loser writes and exits
	launch := func(hedge bool) {
		go func() {
			var resps []wire.Response
			var err error
			if hedge {
				resps, err = c.execFresh(n, reqs)
			} else {
				resps, err = c.exec(n, reqs)
			}
			ch <- attempt{resps: resps, err: err, hedge: hedge}
		}()
	}
	launch(false)
	outstanding := 1
	hedged := false
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	var lastErr error
	for outstanding > 0 {
		select {
		case a := <-ch:
			outstanding--
			if a.err == nil {
				if a.hedge {
					c.stats.hedgeWins.Add(1)
				}
				return a.resps[0], nil
			}
			lastErr = a.err
		case <-timer.C:
			if !hedged {
				hedged = true
				c.stats.hedges.Add(1)
				launch(true)
				outstanding++
			}
		}
	}
	return wire.Response{}, lastErr
}

// writeOne executes one single-key write (not idempotent: no hedge, no
// failover — a write that landed off-owner would corrupt shard ownership).
func (c *Cluster) writeOne(req wire.Request) (wire.Response, error) {
	resps, err := c.exec(c.nodes[c.ring.Owner(req.Key)], []wire.Request{req})
	if err != nil {
		return wire.Response{}, err
	}
	return resps[0], nil
}

// Get retrieves columns of one key from its owner, mirroring
// client.Conn.Get. The returned slices are caller-owned.
func (c *Cluster) Get(key []byte, cols []int) (vals [][]byte, ver uint64, ok bool, err error) {
	r, err := c.readOne(wire.Request{Op: wire.OpGet, Key: key, Cols: cols})
	if err != nil {
		return nil, 0, false, err
	}
	if r.Status != wire.StatusOK {
		return nil, 0, false, nil
	}
	return r.Cols, r.Version, true, nil
}

// GetOrLoad is Get reading through the owner's backend tier on a miss,
// mirroring client.Conn.GetOrLoad (stale marks a degraded answer).
func (c *Cluster) GetOrLoad(key []byte, cols []int) (vals [][]byte, ver uint64, stale, ok bool, err error) {
	r, err := c.readOne(wire.Request{Op: wire.OpGetOrLoad, Key: key, Cols: cols})
	if err != nil {
		return nil, 0, false, false, err
	}
	switch r.Status {
	case wire.StatusOK, wire.StatusStale:
		return r.Cols, r.Version, r.Status == wire.StatusStale, true, nil
	case wire.StatusNotFound:
		return nil, 0, false, false, nil
	}
	return nil, 0, false, false, fmt.Errorf("cluster: getorload status %d", r.Status)
}

// Put writes columns of one key on its owner and returns the new version.
func (c *Cluster) Put(key []byte, puts []wire.ColData) (uint64, error) {
	r, err := c.writeOne(wire.Request{Op: wire.OpPut, Key: key, Puts: puts})
	if err != nil {
		return 0, err
	}
	return r.Version, nil
}

// PutSimple writes data as column 0 of key.
func (c *Cluster) PutSimple(key, data []byte) (uint64, error) {
	return c.Put(key, []wire.ColData{{Col: 0, Data: data}})
}

// PutTTL writes columns of one key with a TTL in seconds on its owner.
func (c *Cluster) PutTTL(key []byte, puts []wire.ColData, ttlSeconds uint32) (uint64, error) {
	r, err := c.writeOne(wire.Request{Op: wire.OpPutTTL, Key: key, Puts: puts, TTL: ttlSeconds})
	if err != nil {
		return 0, err
	}
	if r.Status != wire.StatusOK {
		return 0, fmt.Errorf("cluster: putttl status %d", r.Status)
	}
	return r.Version, nil
}

// Touch resets one key's TTL on its owner; ok false if absent or expired.
func (c *Cluster) Touch(key []byte, ttlSeconds uint32) (ver uint64, ok bool, err error) {
	r, err := c.writeOne(wire.Request{Op: wire.OpTouch, Key: key, TTL: ttlSeconds})
	if err != nil {
		return 0, false, err
	}
	switch r.Status {
	case wire.StatusOK:
		return r.Version, true, nil
	case wire.StatusNotFound:
		return 0, false, nil
	}
	return 0, false, fmt.Errorf("cluster: touch status %d", r.Status)
}

// CasPut conditionally writes one key on its owner, mirroring
// client.Conn.CasPut (ok false = conflict, with the current version).
func (c *Cluster) CasPut(key []byte, expect uint64, puts []wire.ColData) (ver uint64, ok bool, err error) {
	r, err := c.writeOne(wire.Request{Op: wire.OpCas, Key: key, ExpectVersion: expect, Puts: puts})
	if err != nil {
		return 0, false, err
	}
	switch r.Status {
	case wire.StatusOK:
		return r.Version, true, nil
	case wire.StatusConflict:
		return r.Version, false, nil
	}
	return 0, false, fmt.Errorf("cluster: cas status %d", r.Status)
}

// Remove deletes one key on its owner; reports whether it existed.
func (c *Cluster) Remove(key []byte) (bool, error) {
	r, err := c.writeOne(wire.Request{Op: wire.OpRemove, Key: key})
	if err != nil {
		return false, err
	}
	return r.Status == wire.StatusOK, nil
}

// GetBatch reads many keys in one call: the batch splits by owner shard,
// fans out concurrently, and merges into request order. resps[i] answers
// keys[i] with the same statuses a single Get would see.
func (c *Cluster) GetBatch(keys [][]byte, cols []int) ([]wire.Response, error) {
	reqs := make([]wire.Request, len(keys))
	for i, k := range keys {
		reqs[i] = wire.Request{Op: wire.OpGet, Key: k, Cols: cols}
	}
	return c.Do(reqs)
}

// PutBatch writes many keys in one call, split and fanned out like
// GetBatch; vers[i] is the new version of keys[i].
func (c *Cluster) PutBatch(keys [][]byte, puts [][]wire.ColData) ([]uint64, error) {
	reqs := make([]wire.Request, len(keys))
	for i, k := range keys {
		reqs[i] = wire.Request{Op: wire.OpPut, Key: k, Puts: puts[i]}
	}
	resps, err := c.Do(reqs)
	if err != nil {
		return nil, err
	}
	vers := make([]uint64, len(resps))
	for i, r := range resps {
		vers[i] = r.Version
	}
	return vers, nil
}

// cloneResponses deep-copies a response batch out of a Pending's reusable
// decode scratch; cluster responses are always caller-owned because they
// outlive the pooled connection's buffers (batch merges, hedge races).
func cloneResponses(resps []wire.Response) []wire.Response {
	out := make([]wire.Response, len(resps))
	for i, r := range resps {
		out[i] = wire.Response{Status: r.Status, Version: r.Version,
			Cols: cloneCols(r.Cols), Pairs: clonePairs(r.Pairs)}
	}
	return out
}

func cloneCols(cols [][]byte) [][]byte {
	if cols == nil {
		return nil
	}
	out := make([][]byte, len(cols))
	for i, c := range cols {
		out[i] = append([]byte(nil), c...)
	}
	return out
}

func clonePairs(pairs []wire.Pair) []wire.Pair {
	if pairs == nil {
		return nil
	}
	out := make([]wire.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = wire.Pair{Key: append([]byte(nil), p.Key...), Cols: cloneCols(p.Cols)}
	}
	return out
}
