package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// HistID names one of the store-side histograms a Registry owns. Cluster
// mode's per-node RPC histogram lives client-side (outside any store) and
// is built directly with NewHist.
type HistID int

const (
	HGet HistID = iota
	HPut
	HGetBatch
	HPutBatch
	HScan
	HCas
	HGetOrLoad
	HWALFlush
	HCheckpoint
	HRecovery
	HBackendLoad
	HEvict
	NumHists
)

var histNames = [NumHists]string{
	HGet:         "get",
	HPut:         "put",
	HGetBatch:    "get_batch",
	HPutBatch:    "put_batch",
	HScan:        "scan",
	HCas:         "cas",
	HGetOrLoad:   "getorload",
	HWALFlush:    "wal_flush",
	HCheckpoint:  "checkpoint",
	HRecovery:    "recovery",
	HBackendLoad: "backend_load",
	HEvict:       "evict",
}

// Registry bundles a store's histograms and its flight recorder. A nil
// *Registry is valid everywhere and disables everything: Hist and Recorder
// return nil, whose Record methods are no-ops — so "observability off" is
// one nil check on every instrumented path, and zero allocation either way.
type Registry struct {
	hists [NumHists]*Hist
	rec   *Recorder
}

// NewRegistry builds the full set of histograms (one shard per worker) and
// a flight recorder with DefaultRingSize events per worker ring.
func NewRegistry(workers int) *Registry {
	r := &Registry{}
	for id := HistID(0); id < NumHists; id++ {
		r.hists[id] = NewHist(histNames[id], workers)
	}
	r.rec = NewRecorder(workers, 0)
	return r
}

// Hist returns the histogram for id; nil on a nil registry.
//
//masstree:noalloc
func (r *Registry) Hist(id HistID) *Hist {
	if r == nil {
		return nil
	}
	return r.hists[id]
}

// Recorder returns the flight recorder; nil on a nil registry.
//
//masstree:noalloc
func (r *Registry) Recorder() *Recorder {
	if r == nil {
		return nil
	}
	return r.rec
}

// Snapshots copies every histogram, in HistID order. Nil-safe (empty).
func (r *Registry) Snapshots() []HistSnapshot {
	if r == nil {
		return nil
	}
	out := make([]HistSnapshot, 0, NumHists)
	for id := HistID(0); id < NumHists; id++ {
		out = append(out, r.hists[id].Snapshot())
	}
	return out
}

// Stat is one named numeric metric. Every stats surface — the wire Stats
// op, /metrics, /varz — renders from the same []Stat so they cannot
// disagree about what a key means.
type Stat struct {
	Name  string
	Value int64
}

// statPrefix stems every histogram-derived stats key so clients can group
// and cluster aggregation can recognize them.
const statPrefix = "lat_"

// Quantiles reported as stats keys, with their key suffixes.
var quantileKeys = [...]struct {
	Suffix string
	Q      float64
}{
	{"_p50", 0.50},
	{"_p90", 0.90},
	{"_p99", 0.99},
	{"_p999", 0.999},
}

// AppendStats appends a histogram snapshot's stats keys to dst:
// lat_<name>_count, lat_<name>_sum (ns), the four quantiles
// lat_<name>_p50/_p90/_p99/_p999 (representative ns), and one
// lat_<name>_b<i> entry per non-zero bucket. Every value is a base-10
// integer, so v1 stats clients parse them like any other counter, and the
// bucket keys let an aggregator sum across nodes and re-derive quantiles.
func AppendStats(dst []Stat, s HistSnapshot) []Stat {
	stem := statPrefix + s.Name
	dst = append(dst, Stat{stem + "_count", int64(s.Count())})
	dst = append(dst, Stat{stem + "_sum", int64(s.Sum)})
	for _, qk := range quantileKeys {
		dst = append(dst, Stat{stem + qk.Suffix, int64(s.Quantile(qk.Q))})
	}
	for b := 0; b < NumBuckets; b++ {
		if s.Buckets[b] != 0 {
			dst = append(dst, Stat{stem + "_b" + strconv.Itoa(b), int64(s.Buckets[b])})
		}
	}
	return dst
}

// bucketKey splits a stats key of the form lat_<stem>_b<i> into its stem
// ("lat_<stem>") and bucket index; ok is false for any other key. The
// bucket suffix is the *last* "_b<digits>" run, so stems containing "_b"
// (lat_get_batch_b7) parse correctly.
func bucketKey(k string) (stem string, bucket int, ok bool) {
	if !strings.HasPrefix(k, statPrefix) {
		return "", 0, false
	}
	i := strings.LastIndex(k, "_b")
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(k[i+2:])
	if err != nil || n < 0 || n >= NumBuckets {
		return "", 0, false
	}
	return k[:i], n, true
}

// IsBucketKey reports whether a stats key is a raw histogram bucket count
// (lat_<stem>_b<i>). /metrics skips these as scalar gauges — the same
// counts are exposed there as proper Prometheus histogram buckets.
func IsBucketKey(k string) bool {
	_, _, ok := bucketKey(k)
	return ok
}

// RecomputeQuantiles repairs histogram-derived keys in an aggregated stats
// map. Summing per-node stats is right for counts, sums, and buckets, but
// adding two p99s is meaningless — so the aggregator sums everything and
// then calls this, which rebuilds each histogram from its summed
// lat_*_b<i> bucket keys and overwrites the quantile and count keys with
// values derived from the merged distribution.
func RecomputeQuantiles(m map[string]int64) {
	merged := map[string]*HistSnapshot{}
	for k, v := range m {
		stem, b, ok := bucketKey(k)
		if !ok {
			continue
		}
		s := merged[stem]
		if s == nil {
			s = &HistSnapshot{}
			merged[stem] = s
		}
		s.Buckets[b] = uint64(v)
	}
	for stem, s := range merged {
		if sum, ok := m[stem+"_sum"]; ok {
			s.Sum = uint64(sum)
		}
		m[stem+"_count"] = int64(s.Count())
		for _, qk := range quantileKeys {
			m[stem+qk.Suffix] = int64(s.Quantile(qk.Q))
		}
	}
}

// WriteProm renders a histogram snapshot in Prometheus text exposition
// format (hand-rolled; the module stays dependency-free): a classic
// cumulative-bucket histogram named masstree_lat_<name>_ns with le bounds
// in nanoseconds.
func WriteProm(w io.Writer, s HistSnapshot) error {
	stem := "masstree_" + statPrefix + s.Name + "_ns"
	if _, err := io.WriteString(w, "# TYPE "+stem+" histogram\n"); err != nil {
		return err
	}
	var cum uint64
	for b := 0; b < NumBuckets; b++ {
		if s.Buckets[b] == 0 {
			continue
		}
		cum += s.Buckets[b]
		if b == NumBuckets-1 {
			continue // top bucket's bound is +Inf, emitted below
		}
		// le is the bucket's exclusive upper bound: 2^(b+1) ns.
		le := strconv.FormatUint(uint64(1)<<uint(b+1), 10)
		if _, err := io.WriteString(w, stem+"_bucket{le=\""+le+"\"} "+
			strconv.FormatUint(cum, 10)+"\n"); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, stem+"_bucket{le=\"+Inf\"} "+
		strconv.FormatUint(cum, 10)+"\n"); err != nil {
		return err
	}
	if _, err := io.WriteString(w, stem+"_sum "+strconv.FormatUint(s.Sum, 10)+"\n"); err != nil {
		return err
	}
	_, err := io.WriteString(w, stem+"_count "+strconv.FormatUint(cum, 10)+"\n")
	return err
}

// SortStats orders stats keys byte-wise — the deterministic order every
// rendering surface uses.
func SortStats(stats []Stat) {
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
}
