// Package server implements the Masstree network server (§5): a TCP
// listener whose per-connection goroutines execute batched queries against
// the store. The paper's benchmarks use long-lived TCP query connections
// from few clients or client aggregators, "a common operating mode that is
// equally effective at avoiding network overhead"; batching many queries per
// message amortizes network and syscall costs.
//
// Connections speak protocol v1 or v2 (see internal/wire): the first bytes
// either begin a hello frame negotiating v2 or a v1 length header, so
// legacy clients work verbatim. A v1 connection executes one frame at a
// time in its goroutine. A v2 connection is served by a reader → executor →
// writer pipeline: tagged frames cycle through a small ring of connScratch
// buffers over bounded channels, so decoding frame N+1 overlaps executing
// frame N and writing back frame N−1 while single-executor FIFO order
// preserves per-connection response order by tag. Combined with a
// pipelining client (many tagged frames in flight), neither side ever
// stalls on the other's round trip.
//
// Execution is batch-aware in both directions: a run of consecutive OpGet
// requests within one message is served through Session.GetBatchInto, and a
// run of consecutive OpPut requests through Session.PutBatchInto — both
// descend the tree in key order so consecutive operations share the upper
// tree levels' cache lines (§4.8's PALM-style batching), and the put run
// additionally shares border-node lock acquisitions and log-buffer locks.
// The request path is built for steady-state zero allocation: each
// connection owns a connScratch whose wire decode buffers, response slice,
// column/pair/range arenas, and ColPut scratch are retained across
// messages, and decoded requests alias the frame body rather than copying
// it. Put data is not copied either — the store copies it into the packed
// value and the log buffer — so a put's only steady-state allocation is the
// value itself.
//
// Each connection is bound to a worker id (round-robin), which selects the
// log its puts append to — the paper's per-core logs mapped onto Go's
// scheduler.
package server

import (
	"bufio"
	"context"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/value"
	"repro/internal/wire"
)

// Server serves a kvstore over TCP.
type Server struct {
	store *kvstore.Store
	obs   *obs.Registry // the store's registry; nil when observability is off
	ln    net.Listener

	nextWorker atomic.Int64
	workers    int

	// batchedGets counts OpGet requests served through the batched
	// Session.GetBatch path (exported as the "batched_gets" stat);
	// batchedPuts is its write-side twin for Session.PutBatchInto
	// ("batched_puts"). erroredRequests counts requests answered with
	// StatusError because they could not be decoded or executed — a
	// malformed request inside a decodable frame fails alone instead of
	// killing its connection ("errored_requests").
	batchedGets     atomic.Int64
	batchedPuts     atomic.Int64
	erroredRequests atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	udp   []*udpListener
	wg    sync.WaitGroup
	done  atomic.Bool
}

// New creates a server for store with the given number of logical workers
// (log streams). workers <= 0 defaults to 1.
func New(store *kvstore.Store, workers int) *Server {
	if workers <= 0 {
		workers = 1
	}
	return &Server{store: store, obs: store.Obs(), workers: workers, conns: map[net.Conn]struct{}{}}
}

// Listen starts accepting connections on addr ("host:port"; ":0" picks a
// free port). It returns immediately; Addr reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.done.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		worker := int(s.nextWorker.Add(1)-1) % s.workers
		s.wg.Add(1)
		go s.serveConn(conn, worker)
	}
}

// connScratch is one connection's reusable execution state. Every buffer is
// retained across messages, so a connection in steady state allocates only
// the packed values its puts publish and responses that outgrow every
// previous message.
//
//masstree:scratch
type connScratch struct {
	dec     wire.DecodeBuf       // request decode buffers; requests alias the frame
	enc     []byte               // response encode buffer
	resps   []wire.Response      // response slice, one per request
	cols    [][]byte             // arena backing Response.Cols for this message
	keys    [][]byte             // key slice handed to batched session calls
	puts    []value.ColPut       // flat OpPut conversion arena
	putRuns [][]value.ColPut     // per-request windows into puts for PutBatchInto
	pairs   []wire.Pair          // arena backing Response.Pairs for this message
	rng     kvstore.RangeScratch // arenas behind Session.GetRangeInto

	// v2 pipeline state: the frame's tag, its decoded requests (aliasing
	// dec), and the claimed batch size (> len(reqs) when a decodable frame
	// held undecodable requests; the tail is answered with StatusError).
	tag     uint32
	reqs    []wire.Request
	claimed int
}

// minBatchRun is the shortest run of consecutive same-op requests routed
// through a batched path; a single get or put gains nothing from batch
// ordering.
const minBatchRun = 2

// maxRetainedScratch bounds how much scratch one connection keeps between
// messages: buffers grown past this by an unusually large message are
// released afterwards rather than pinned for the connection's lifetime.
const maxRetainedScratch = 1 << 20

// shrink releases oversized buffers after a message has been encoded.
func (sc *connScratch) shrink() {
	sc.dec.Shrink(maxRetainedScratch)
	if cap(sc.enc) > maxRetainedScratch {
		sc.enc = nil
	}
	if cap(sc.resps)*64 > maxRetainedScratch { // ~sizeof(wire.Response)
		sc.resps = nil
	}
	if cap(sc.cols)*24 > maxRetainedScratch {
		sc.cols = nil
	}
	if cap(sc.keys)*24 > maxRetainedScratch {
		sc.keys = nil
	}
	if cap(sc.puts)*32 > maxRetainedScratch { // ~sizeof(value.ColPut)
		sc.puts = nil
	}
	if cap(sc.putRuns)*24 > maxRetainedScratch {
		sc.putRuns = nil
	}
	if cap(sc.pairs)*48 > maxRetainedScratch {
		sc.pairs = nil
	}
	sc.rng.Shrink(maxRetainedScratch)
}

func (s *Server) serveConn(conn net.Conn, worker int) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sess := s.store.Session(worker)
	defer sess.Close()
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	// The connection's first bytes either begin a hello frame (negotiate
	// v2) or a v1 length header (legacy client, served verbatim).
	first, err := r.Peek(4)
	if err != nil {
		return
	}
	if !wire.IsHelloPrefix(first) {
		s.serveV1(sess, r, w)
		return
	}
	ver, err := wire.ReadHello(r)
	if err != nil || ver < wire.Version2 {
		// Version2 is the oldest hello-negotiated version (v1 clients send
		// no hello), so a lower proposal is a protocol violation: drop the
		// connection rather than answer with a version the sender could
		// not speak (see the wire package comment).
		return
	}
	if err := wire.WriteHello(w, wire.Version2); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		return
	}
	s.serveV2(conn, sess, r, w)
}

// serveV1 executes one frame at a time: the v1 protocol allows a single
// batch in flight, so the read, execute, and write phases simply alternate
// in this goroutine.
func (s *Server) serveV1(sess *kvstore.Session, r *bufio.Reader, w *bufio.Writer) {
	sc := &connScratch{}
	for {
		body, err := wire.ReadRequestBody(r, &sc.dec)
		if err != nil {
			// EOF and friends are orderly shutdown; anything else is a
			// framing error. Either way, drop the connection.
			return
		}
		reqs, claimed, err := wire.ParseRequestsLenient(body, &sc.dec)
		if err != nil {
			// The frame itself cannot be trusted (forged count, trailing
			// bytes): no per-request recovery is possible.
			return
		}
		s.executeBatch(sess, reqs, claimed, sc, false)
		if err := wire.WriteResponsesInto(w, sc.resps, &sc.enc); err != nil {
			return
		}
		sc.shrink()
	}
}

// v2PipelineDepth is the number of connScratch buffers a v2 connection
// cycles through its reader → executor → writer stages — one frame being
// decoded, one executing, one being written back. More depth buys nothing:
// the pipeline has three stages, and in-flight frames beyond it queue in
// the kernel socket buffers.
const v2PipelineDepth = 4

// serveV2 runs the pipelined protocol: a reader goroutine decodes tagged
// frames, this executor goroutine executes them, and a writer goroutine
// streams the encoded responses back. Stages hand connScratch buffers
// around over bounded channels (the scratch ring doubles as flow control),
// so decoding frame N+1 overlaps executing frame N and writing frame N−1.
// FIFO channels and the single executor preserve response order by tag.
//
// The executor runs in serveConn's goroutine: it is the stage that touches
// the store, so server shutdown (which waits on serveConn via s.wg) cannot
// return while a request still executes.
func (s *Server) serveV2(conn net.Conn, sess *kvstore.Session, r *bufio.Reader, w *bufio.Writer) {
	free := make(chan *connScratch, v2PipelineDepth)
	for i := 0; i < v2PipelineDepth; i++ {
		free <- &connScratch{}
	}
	decoded := make(chan *connScratch, v2PipelineDepth)
	executed := make(chan *connScratch, v2PipelineDepth)

	var pipeWG sync.WaitGroup
	pipeWG.Add(2)
	// Reader: frame in, requests decoded (aliasing the scratch), tag noted.
	go func() {
		defer pipeWG.Done()
		defer close(decoded)
		for {
			sc := <-free
			tag, n, err := wire.ReadTaggedHeader(r)
			if err != nil {
				return
			}
			body, err := wire.ReadTaggedRequestBody(r, n, &sc.dec)
			if err != nil {
				return
			}
			reqs, claimed, err := wire.ParseRequestsLenient(body, &sc.dec)
			if err != nil {
				return
			}
			sc.tag, sc.reqs, sc.claimed = tag, reqs, claimed
			decoded <- sc
		}
	}()
	// Writer: encodes each executed batch (the responses alias the
	// scratch's arenas, which stay untouched until the scratch is recycled)
	// and streams it out, recycling scratches to the reader. Encoding here
	// rather than in the executor balances the pipeline: executing frame
	// N+1 overlaps encoding and writing frame N. On an error it keeps
	// draining (so the executor never blocks) with the connection closed,
	// which unsticks the reader.
	go func() {
		defer pipeWG.Done()
		failed := false
		for sc := range executed {
			if !failed {
				b, err := wire.AppendTaggedResponses(sc.enc[:0], sc.tag, sc.resps)
				if err != nil {
					// Response exceeds the frame bound: unanswerable; drop
					// the connection like the v1 path would.
					failed = true
					conn.Close()
				} else {
					sc.enc = b
					if _, err := w.Write(sc.enc); err != nil {
						failed = true
						conn.Close()
					} else if len(executed) == 0 {
						// Nothing queued behind us: push the batch to the
						// client now instead of waiting for more frames.
						if err := w.Flush(); err != nil {
							failed = true
							conn.Close()
						}
					}
				}
			}
			sc.shrink()
			free <- sc
		}
	}()
	// Executor (this goroutine): runs decoded requests against the store.
	for sc := range decoded {
		s.executeBatch(sess, sc.reqs, sc.claimed, sc, true)
		executed <- sc
	}
	close(executed)
	pipeWG.Wait()
}

// executeBatch fills sc.resps with one response per request — claimed of
// them, where claimed >= len(reqs): a decodable frame whose tail could not
// be decoded (unknown opcode, truncated payload) still gets a full batch of
// responses, the undecodable suffix answered with StatusError, so one bad
// request fails alone instead of killing the connection mid-batch. Runs of
// consecutive OpGets (or OpPuts) of length >= minBatchRun are served
// through the session's batched lookup (or batched put); everything else
// executes one at a time. ttlOK admits the cache-mode operations
// (OpPutTTL/OpTouch/OpGetOrLoad), which are v2 surface: the v1 and UDP paths
// answer them with StatusError, leaving v1 semantics untouched.
func (s *Server) executeBatch(sess *kvstore.Session, reqs []wire.Request, claimed int, sc *connScratch, ttlOK bool) {
	if claimed < len(reqs) {
		claimed = len(reqs)
	}
	if cap(sc.resps) < claimed {
		sc.resps = make([]wire.Response, claimed)
	}
	sc.resps = sc.resps[:claimed]
	sc.cols = sc.cols[:0]
	sc.pairs = sc.pairs[:0]
	sc.rng.Reset()
	for i := 0; i < len(reqs); {
		if op := reqs[i].Op; op == wire.OpGet || op == wire.OpPut {
			j := i + 1
			for j < len(reqs) && reqs[j].Op == op {
				j++
			}
			if j-i >= minBatchRun {
				if op == wire.OpGet {
					s.executeGetRun(sess, reqs[i:j], sc.resps[i:j], sc)
				} else {
					s.executePutRun(sess, reqs[i:j], sc.resps[i:j], sc)
				}
				i = j
				continue
			}
		}
		sc.resps[i] = s.execute(sess, &reqs[i], sc, ttlOK)
		i++
	}
	for i := len(reqs); i < claimed; i++ {
		sc.resps[i] = wire.Response{Status: wire.StatusError}
	}
	if claimed > len(reqs) {
		s.erroredRequests.Add(int64(claimed - len(reqs)))
	}
}

// executeGetRun serves a run of OpGet requests through Session.GetBatchInto
// (§4.8). Response columns are appended to sc.cols, a per-message arena.
// The whole run lands as one observation in the get_batch histogram: the
// run is the unit the batched path amortizes over, and a single time.Now
// pair per run keeps the instrumentation off the per-key path.
func (s *Server) executeGetRun(sess *kvstore.Session, reqs []wire.Request, resps []wire.Response, sc *connScratch) {
	var runStart time.Time
	if s.obs != nil {
		runStart = time.Now()
	}
	sc.keys = sc.keys[:0]
	for i := range reqs {
		sc.keys = append(sc.keys, reqs[i].Key)
	}
	vals, found := sess.GetBatchInto(sc.keys)
	s.batchedGets.Add(int64(len(reqs)))
	for i := range reqs {
		if !found[i] {
			resps[i] = wire.Response{Status: wire.StatusNotFound}
			continue
		}
		start := len(sc.cols)
		sc.cols = kvstore.AppendCols(sc.cols, vals[i], reqs[i].Cols)
		resps[i] = wire.Response{Status: wire.StatusOK, Version: vals[i].Version(),
			Cols: sc.cols[start:len(sc.cols):len(sc.cols)]}
	}
	if s.obs != nil {
		s.obs.Hist(obs.HGetBatch).Record(sess.Worker(), time.Since(runStart))
	}
}

// executePutRun serves a run of OpPut requests through Session.PutBatchInto
// (§4.8 applied to writes): keys descend in tree order, co-located keys
// share one border-node lock acquisition, and all log records are encoded
// under one log-buffer lock. The decoded put data still aliases the frame —
// the store copies it into the packed value and the log, so no per-put copy
// is made here. Like the get run, the run is one put_batch observation.
func (s *Server) executePutRun(sess *kvstore.Session, reqs []wire.Request, resps []wire.Response, sc *connScratch) {
	var runStart time.Time
	if s.obs != nil {
		runStart = time.Now()
	}
	sc.keys = sc.keys[:0]
	sc.puts = sc.puts[:0]
	sc.putRuns = sc.putRuns[:0]
	for i := range reqs {
		sc.keys = append(sc.keys, reqs[i].Key)
		start := len(sc.puts)
		for _, p := range reqs[i].Puts {
			sc.puts = append(sc.puts, value.ColPut{Col: p.Col, Data: p.Data})
		}
		// The window stays valid even if sc.puts later reallocates: it
		// aliases the already-written backing array.
		sc.putRuns = append(sc.putRuns, sc.puts[start:len(sc.puts):len(sc.puts)])
	}
	vers := sess.PutBatchInto(sc.keys, sc.putRuns)
	s.batchedPuts.Add(int64(len(reqs)))
	for i := range reqs {
		resps[i] = wire.Response{Status: wire.StatusOK, Version: vers[i]}
	}
	if s.obs != nil {
		s.obs.Hist(obs.HPutBatch).Record(sess.Worker(), time.Since(runStart))
	}
}

// histForOp maps a wire op to its server-side latency histogram; ok is
// false for ops that are not timed (Stats itself, Remove, unknown ops).
// PutTTL and Touch fold into the put histogram: they take the same write
// path and the cardinality stays the v1 set the ISSUE names.
func histForOp(op wire.OpCode) (obs.HistID, bool) {
	switch op {
	case wire.OpGet:
		return obs.HGet, true
	case wire.OpPut, wire.OpPutTTL, wire.OpTouch:
		return obs.HPut, true
	case wire.OpCas:
		return obs.HCas, true
	case wire.OpGetOrLoad:
		return obs.HGetOrLoad, true
	case wire.OpGetRange:
		return obs.HScan, true
	}
	return 0, false
}

// execute serves one request, timing it into the op's latency histogram.
// Responses may alias sc's arenas and the request's frame buffer; they are
// valid until the next message.
func (s *Server) execute(sess *kvstore.Session, r *wire.Request, sc *connScratch, ttlOK bool) wire.Response {
	if s.obs != nil {
		if id, ok := histForOp(r.Op); ok {
			start := time.Now()
			resp := s.executeOp(sess, r, sc, ttlOK)
			s.obs.Hist(id).Record(sess.Worker(), time.Since(start))
			return resp
		}
	}
	return s.executeOp(sess, r, sc, ttlOK)
}

func (s *Server) executeOp(sess *kvstore.Session, r *wire.Request, sc *connScratch, ttlOK bool) wire.Response {
	switch r.Op {
	case wire.OpGet:
		// Gets report the value's version so clients can chain OpCas off a
		// read (versioned read-modify-write).
		v, ok := sess.GetValue(r.Key)
		if !ok {
			return wire.Response{Status: wire.StatusNotFound}
		}
		start := len(sc.cols)
		sc.cols = kvstore.AppendCols(sc.cols, v, r.Cols)
		return wire.Response{Status: wire.StatusOK, Version: v.Version(),
			Cols: sc.cols[start:len(sc.cols):len(sc.cols)]}
	case wire.OpPut:
		// The decoded put data aliases the connection's frame buffer; that
		// is safe because the store copies it into the packed value and the
		// log buffer before returning.
		sc.puts = sc.puts[:0]
		for _, p := range r.Puts {
			sc.puts = append(sc.puts, value.ColPut{Col: p.Col, Data: p.Data})
		}
		ver := sess.Put(r.Key, sc.puts)
		return wire.Response{Status: wire.StatusOK, Version: ver}
	case wire.OpCas:
		// Versioned conditional put: the store compares the current version
		// with ExpectVersion under the owning border node's lock. Mismatch
		// answers StatusConflict with the current version so the client can
		// re-read and retry.
		sc.puts = sc.puts[:0]
		for _, p := range r.Puts {
			sc.puts = append(sc.puts, value.ColPut{Col: p.Col, Data: p.Data})
		}
		ver, ok := sess.CasPut(r.Key, r.ExpectVersion, sc.puts)
		if !ok {
			return wire.Response{Status: wire.StatusConflict, Version: ver}
		}
		return wire.Response{Status: wire.StatusOK, Version: ver}
	case wire.OpPutTTL:
		if !ttlOK {
			s.erroredRequests.Add(1)
			return wire.Response{Status: wire.StatusError}
		}
		sc.puts = sc.puts[:0]
		for _, p := range r.Puts {
			sc.puts = append(sc.puts, value.ColPut{Col: p.Col, Data: p.Data})
		}
		ver := sess.PutTTL(r.Key, sc.puts, expiryFromTTL(r.TTL))
		return wire.Response{Status: wire.StatusOK, Version: ver}
	case wire.OpTouch:
		if !ttlOK {
			s.erroredRequests.Add(1)
			return wire.Response{Status: wire.StatusError}
		}
		ver, ok := sess.Touch(r.Key, expiryFromTTL(r.TTL))
		if !ok {
			return wire.Response{Status: wire.StatusNotFound}
		}
		return wire.Response{Status: wire.StatusOK, Version: ver}
	case wire.OpGetOrLoad:
		// Read-through get (v2 surface, like the TTL ops): a miss consults
		// the store's backend tier, with concurrent misses for the same key
		// coalesced into one backend load. StatusStale marks a degraded
		// answer — an expired resident value served because the backend could
		// not be reached. A store without a backend (or a backend failure
		// with nothing resident) answers StatusError.
		if !ttlOK {
			s.erroredRequests.Add(1)
			return wire.Response{Status: wire.StatusError}
		}
		v, stale, err := sess.GetOrLoad(context.Background(), r.Key)
		if err != nil {
			s.erroredRequests.Add(1)
			return wire.Response{Status: wire.StatusError}
		}
		if v == nil {
			return wire.Response{Status: wire.StatusNotFound}
		}
		status := wire.StatusOK
		if stale {
			status = wire.StatusStale
		}
		start := len(sc.cols)
		sc.cols = kvstore.AppendCols(sc.cols, v, r.Cols)
		return wire.Response{Status: status, Version: v.Version(),
			Cols: sc.cols[start:len(sc.cols):len(sc.cols)]}
	case wire.OpRemove:
		if sess.Remove(r.Key) {
			return wire.Response{Status: wire.StatusOK}
		}
		return wire.Response{Status: wire.StatusNotFound}
	case wire.OpGetRange:
		// Range results are appended into the connection's range arenas
		// (keys, columns, pairs all reused across messages); the wire pairs
		// alias them until the response is encoded.
		pairs := sess.GetRangeInto(r.Key, r.N, r.Cols, &sc.rng)
		start := len(sc.pairs)
		for _, p := range pairs {
			sc.pairs = append(sc.pairs, wire.Pair{Key: p.Key, Cols: p.Cols})
		}
		return wire.Response{Status: wire.StatusOK, Pairs: sc.pairs[start:len(sc.pairs):len(sc.pairs)]}
	case wire.OpStats:
		return s.statsResponse(ttlOK)
	default:
		return wire.Response{Status: wire.StatusError}
	}
}

// expiryFromTTL converts wire TTL seconds into the store's absolute expiry
// deadline in unix nanoseconds (0 stays 0: never expires).
func expiryFromTTL(ttl uint32) uint64 {
	if ttl == 0 {
		return 0
	}
	return uint64(time.Now().UnixNano()) + uint64(ttl)*uint64(time.Second)
}

// statsResponse reports store size, tree operation counters, batching
// counters, cache-mode health, and logging health as metric name/value
// pairs. flush_errors is the count of failed log flushes (background group
// commits included); a non-zero value means acknowledged puts may not be
// durable — on v2 connections flush_last_error carries the most recent
// failure's text (the one non-numeric stat; it is withheld from v1 and UDP
// responses because pre-existing v1 clients parse every stat as an integer
// and would reject the whole response). bytes_live is the
// accounted packed-value footprint; evictions, expirations, ghost_hits, and
// admit_drops are the cache-mode counters (zero unless MaxBytes/TTLs are in
// use).
func (s *Server) statsResponse(v2 bool) wire.Response {
	stats, _ := s.collectStats()
	pairs := make([]wire.Pair, 0, len(stats)+1)
	for _, m := range stats {
		pairs = append(pairs, wire.Pair{Key: []byte(m.Name),
			Cols: [][]byte{[]byte(strconv.FormatInt(m.Value, 10))}})
	}
	if v2 {
		if _, flushLast := s.store.FlushStats(); flushLast != nil {
			pairs = append(pairs, wire.Pair{Key: []byte("flush_last_error"),
				Cols: [][]byte{[]byte(flushLast.Error())}})
		}
	}
	return wire.Response{Status: wire.StatusOK, Pairs: pairs}
}

// collectStats gathers every numeric stat the server exports — store and
// tree counters, server batching counters, backend-tier health, and the
// histogram-derived latency keys — into one byte-wise sorted slice, along
// with the histogram snapshots the latency keys were derived from. The wire
// Stats op, /metrics, and /varz all render from this single collector, so
// the three surfaces cannot disagree about a key's meaning or its value's
// derivation; the returned snapshots let the admin handlers expose full
// bucket detail that provably matches the quantile keys.
func (s *Server) collectStats() ([]obs.Stat, []obs.HistSnapshot) {
	st := s.store.Stats()
	cs := s.store.CacheStats()
	flushErrs, _ := s.store.FlushStats()
	ls := s.store.LoaderStats()
	stats := []obs.Stat{
		{Name: "keys", Value: int64(s.store.Len())},
		{Name: "splits", Value: st.Splits},
		{Name: "layer_creations", Value: st.LayerCreations},
		{Name: "layer_collapses", Value: st.LayerCollapses},
		{Name: "node_deletes", Value: st.NodeDeletes},
		{Name: "root_retries", Value: st.RootRetries},
		{Name: "local_retries", Value: st.LocalRetries},
		{Name: "slot_reuses", Value: st.SlotReuses},
		{Name: "batched_gets", Value: s.batchedGets.Load()},
		{Name: "batched_puts", Value: s.batchedPuts.Load()},
		{Name: "errored_requests", Value: s.erroredRequests.Load()},
		{Name: "bytes_live", Value: cs.BytesLive},
		{Name: "max_bytes", Value: s.store.MaxBytes()},
		{Name: "evictions", Value: cs.Evictions},
		{Name: "expirations", Value: cs.Expirations},
		{Name: "ghost_hits", Value: cs.GhostHits},
		{Name: "admit_drops", Value: cs.AdmitDrops},
		{Name: "flush_errors", Value: flushErrs},
		{Name: "flush_retries", Value: s.store.FlushRetries()},
		{Name: "broken_chains", Value: s.store.RecoveryStats().BrokenChains},
		{Name: "missing_logs", Value: s.store.RecoveryStats().MissingLogs},
		// Backend-tier health (all numeric, so v1 clients that integer-parse
		// every stat stay happy): zero-valued when no backend is configured.
		{Name: "loads", Value: int64(ls.Loads)},
		{Name: "load_errors", Value: int64(ls.LoadErrors)},
		{Name: "herd_coalesced", Value: int64(ls.HerdCoalesced)},
		{Name: "stale_served", Value: int64(ls.StaleServed)},
		{Name: "negative_hits", Value: int64(ls.NegativeHits)},
		{Name: "breaker_state", Value: int64(ls.Backend.BreakerState)},
		{Name: "breaker_opens", Value: int64(ls.Backend.BreakerOpens)},
		{Name: "writebehind_depth", Value: int64(ls.WriteBehindDepth)},
		{Name: "writebehind_drops", Value: int64(ls.WriteBehindDrops)},
	}
	snaps := s.obs.Snapshots()
	for _, hs := range snaps {
		stats = obs.AppendStats(stats, hs)
	}
	obs.SortStats(stats)
	return stats, snaps
}

// Shutdown stops the server gracefully: it stops accepting, then gives
// in-flight connections up to timeout to finish and disconnect on their own
// (every frame already received keeps executing and its responses keep
// flowing back). Connections still alive when the budget lapses are
// force-closed — their unread frames are lost, which is why the return value
// matters: true means every connection drained cleanly, false means the
// drain timed out and clients may have seen mid-pipeline resets. Either way
// all handlers have exited when Shutdown returns. The store is not touched;
// the caller flushes/checkpoints it after the network is quiet.
func (s *Server) Shutdown(timeout time.Duration) bool {
	s.done.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for _, l := range s.udp {
		l.conn.Close() // datagram service has no drain: no connection state
	}
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return true
	case <-time.After(timeout):
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-drained
	return false
}

// Close stops accepting, closes all connections and UDP sockets, and waits
// for handlers.
func (s *Server) Close() error {
	s.done.Store(true)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	for _, l := range s.udp {
		l.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
