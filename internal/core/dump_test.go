package core

import (
	"fmt"
	"strings"
	"testing"
)

// dump renders the physical structure of one B+-tree layer (and recursively
// its sub-layers) for debugging.
func (t *Tree) dump() string {
	var b strings.Builder
	dumpNode(&b, t.rootHeader(), 0)
	return b.String()
}

func dumpNode(b *strings.Builder, h *nodeHeader, indent int) {
	pad := strings.Repeat("  ", indent)
	v := h.version.Load()
	if isBorder(v) {
		n := h.border()
		fmt.Fprintf(b, "%sborder %p v=%#x low=(%#x,%d) prev=%p next=%p\n",
			pad, n, v, n.lowSlice, n.lowOrd, n.prev.Load(), n.next.Load())
		perm := n.perm()
		for r := 0; r < perm.count(); r++ {
			slot := perm.slot(r)
			kl := n.keylen[slot].Load()
			ks := n.keyslice[slot].Load()
			switch kl {
			case klLayer:
				fmt.Fprintf(b, "%s  [%d] slice=%#x LAYER:\n", pad, r, ks)
				dumpNode(b, (*nodeHeader)(n.loadLV(slot)), indent+2)
			case klSuffix:
				var suf []byte
				if sp := n.suffix[slot].Load(); sp != nil {
					suf = *sp
				}
				fmt.Fprintf(b, "%s  [%d] slice=%#x suffix=%q\n", pad, r, ks, suf)
			default:
				fmt.Fprintf(b, "%s  [%d] slice=%#x len=%d\n", pad, r, ks, kl)
			}
		}
		return
	}
	in := h.interior()
	nk := int(in.nkeys.Load())
	fmt.Fprintf(b, "%sinterior %p v=%#x nkeys=%d\n", pad, in, v, nk)
	for i := 0; i <= nk; i++ {
		if i > 0 {
			fmt.Fprintf(b, "%s  key[%d]=%#x\n", pad, i-1, in.keyslice[i-1].Load())
		}
		dumpNode(b, in.child[i].Load(), indent+1)
	}
}

// TestDumpSmoke keeps the dump helper compiled and sane.
func TestDumpSmoke(t *testing.T) {
	tr := New()
	put(tr, "a", "1")
	put(tr, "verylongkey-abcdefgh", "2")
	s := tr.dump()
	if !strings.Contains(s, "border") {
		t.Fatalf("dump missing border: %s", s)
	}
}
