package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/value"
)

func TestGetBatchMatchesGet(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(5))
	var present [][]byte
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("%d", rng.Intn(100000)))
		tr.Put(k, value.New(k))
		present = append(present, k)
	}
	// Batch mixing hits, misses, duplicates, and unsorted order.
	var batch [][]byte
	for i := 0; i < 2000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			batch = append(batch, present[rng.Intn(len(present))])
		default:
			batch = append(batch, []byte(fmt.Sprintf("miss-%d", rng.Intn(1000))))
		}
	}
	vals, found := tr.GetBatch(batch)
	if len(vals) != len(batch) || len(found) != len(batch) {
		t.Fatalf("result lengths %d/%d for %d keys", len(vals), len(found), len(batch))
	}
	for i, k := range batch {
		wantV, wantOK := tr.Get(k)
		if found[i] != wantOK {
			t.Fatalf("key %q: found=%v want %v", k, found[i], wantOK)
		}
		if wantOK && string(vals[i].Bytes()) != string(wantV.Bytes()) {
			t.Fatalf("key %q: wrong value", k)
		}
	}
}

func TestGetBatchEmpty(t *testing.T) {
	tr := New()
	vals, found := tr.GetBatch(nil)
	if len(vals) != 0 || len(found) != 0 {
		t.Fatal("empty batch should return empty results")
	}
}

func TestGetBatchConcurrentWithWrites(t *testing.T) {
	tr := New()
	var stable [][]byte
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("stable%05d", i))
		tr.Put(k, value.New(k))
		stable = append(stable, k)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			k := []byte(fmt.Sprintf("churn%05d", i%3000))
			tr.Put(k, value.New(k))
		}
	}()
	for round := 0; round < 20; round++ {
		vals, found := tr.GetBatch(stable)
		for i := range stable {
			if !found[i] || string(vals[i].Bytes()) != string(stable[i]) {
				t.Fatalf("batch lost stable key %q", stable[i])
			}
		}
	}
	<-done
}
