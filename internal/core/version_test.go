package core

import (
	"testing"
	"unsafe"
)

// TestHeaderLayout guards the unsafe conversions between *nodeHeader and the
// concrete node types: the header must be the first field of both.
func TestHeaderLayout(t *testing.T) {
	if off := unsafe.Offsetof(borderNode{}.h); off != 0 {
		t.Fatalf("borderNode header offset = %d", off)
	}
	if off := unsafe.Offsetof(interiorNode{}.h); off != 0 {
		t.Fatalf("interiorNode header offset = %d", off)
	}
	b := newBorder(true, false)
	if b.h.border() != b {
		t.Fatal("border round trip failed")
	}
	in := newInterior(0)
	if in.h.interior() != in {
		t.Fatal("interior round trip failed")
	}
	if !isBorder(b.h.version.Load()) || isBorder(in.h.version.Load()) {
		t.Fatal("isborder bit wrong")
	}
	if !isRoot(b.h.version.Load()) {
		t.Fatal("root bit not set")
	}
}

func TestLockUnlockCounters(t *testing.T) {
	var h nodeHeader
	h.version.Store(borderBit)

	v0 := h.version.Load()
	h.lock()
	if !isLocked(h.version.Load()) {
		t.Fatal("not locked")
	}
	h.unlock()
	if changed(v0, h.version.Load()) {
		t.Fatal("plain lock/unlock must not change the version")
	}

	h.lock()
	h.markInserting()
	h.unlock()
	v1 := h.version.Load()
	if vinsert(v1) != vinsert(v0)+vinsertOne {
		t.Fatal("vinsert not incremented")
	}
	if isDirty(v1) || isLocked(v1) {
		t.Fatal("dirty/lock bits not cleared")
	}

	h.lock()
	h.markSplitting()
	h.unlock()
	v2 := h.version.Load()
	if vsplit(v2) != vsplit(v1)+vsplitOne {
		t.Fatal("vsplit not incremented")
	}

	// Splitting takes precedence when both dirty bits are set.
	h.lock()
	h.markInserting()
	h.markSplitting()
	h.unlock()
	v3 := h.version.Load()
	if vsplit(v3) != vsplit(v2)+vsplitOne || vinsert(v3) != vinsert(v2) {
		t.Fatal("splitting should win over inserting")
	}
}

func TestVinsertWrapStaysInField(t *testing.T) {
	var h nodeHeader
	// Set vinsert to its maximum; the increment must not carry into vsplit.
	h.version.Store(vinsertMask)
	h.lock()
	h.markInserting()
	h.unlock()
	v := h.version.Load()
	if vinsert(v) != 0 {
		t.Fatalf("vinsert should wrap to 0, got %#x", vinsert(v))
	}
	if vsplit(v) != 0 {
		t.Fatalf("vinsert wrap leaked into vsplit: %#x", vsplit(v))
	}
}

func TestChanged(t *testing.T) {
	v := borderBit | rootBit
	if changed(v, v|lockBit) {
		t.Fatal("lock bit alone is not a change")
	}
	if !changed(v, v|insertingBit) {
		t.Fatal("inserting bit is a change")
	}
	if !changed(v, v+vsplitOne) {
		t.Fatal("vsplit increment is a change")
	}
}

func TestStableSpinsOnDirty(t *testing.T) {
	var h nodeHeader
	h.version.Store(borderBit)
	h.lock()
	h.markInserting()
	done := make(chan uint64)
	go func() { done <- h.stable() }()
	h.unlock()
	v := <-done
	if isDirty(v) {
		t.Fatal("stable returned a dirty version")
	}
}

func TestTryLock(t *testing.T) {
	var h nodeHeader
	if !h.tryLock() {
		t.Fatal("tryLock on unlocked node failed")
	}
	if h.tryLock() {
		t.Fatal("tryLock on locked node succeeded")
	}
	h.unlock()
	if !h.tryLock() {
		t.Fatal("tryLock after unlock failed")
	}
	h.unlock()
}
