// Package client is the Go client library for the Masstree server. It
// supports batched queries — many operations per network message — which §7
// shows is vital for throughput on small-operation workloads.
//
// Two clients are provided. Client speaks protocol v1: it owns one TCP
// connection, allows one batch in flight, and is safe for one goroutine at
// a time; open several clients for parallel load (the paper's benchmarks
// run many client processes against per-core server queues).
//
// Conn speaks protocol v2: it is safe for concurrent use and keeps many
// tagged batches in flight on one connection, so neither side ever idles
// waiting for the other's round trip. Issue batches asynchronously with Go
// and collect them with Wait:
//
//	conn, err := client.DialConn(addr, client.WithWindow(16))
//	...
//	p1 := conn.Go(batch1) // sent; does not wait for the response
//	p2 := conn.Go(batch2) // pipelined behind batch1
//	resps1, err := p1.Wait()
//	...read resps1...
//	p1.Release() // recycle decode buffers; resps1 invalid after this
//	resps2, err := p2.Wait()
//	...
//
// Both clients expose versioned conditional writes (CasPut): every get
// returns the value's version, and a CasPut applies only if the key's
// version still matches, enabling lock-free read-modify-write across the
// network.
package client

import (
	"bufio"
	"fmt"
	"net"

	"repro/internal/wire"
)

// Client is a connection to a Masstree server.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	enc  []byte             // encode buffer, reused across Do/Send calls
	dec  wire.RespDecodeBuf // decode scratch for DoReuse
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 1<<16),
		w:    bufio.NewWriterSize(conn, 1<<16),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do executes a batch of requests in one round trip and returns the
// responses in request order. The responses own their memory and may be
// retained; throughput-sensitive callers should prefer DoReuse.
func (c *Client) Do(reqs []wire.Request) ([]wire.Response, error) {
	if err := wire.WriteRequestsInto(c.w, reqs, &c.enc); err != nil {
		return nil, err
	}
	resps, err := wire.ReadResponses(c.r)
	if err != nil {
		return nil, err
	}
	if len(resps) != len(reqs) {
		return nil, fmt.Errorf("client: %d responses for %d requests", len(resps), len(reqs))
	}
	return resps, nil
}

// maxRetainedScratch bounds the encode/decode scratch kept between calls;
// one oversized batch doesn't pin its footprint for the client's lifetime.
const maxRetainedScratch = 1 << 20

// DoReuse is Do decoding into the client's reusable buffers: the returned
// responses (and every slice they reference) are valid only until the next
// DoReuse/Recv call on this client. In steady state a DoReuse round trip
// performs no client-side allocations.
//
//masstree:noalloc
func (c *Client) DoReuse(reqs []wire.Request) ([]wire.Response, error) {
	if cap(c.enc) > maxRetainedScratch {
		c.enc = nil
	}
	c.dec.Shrink(maxRetainedScratch)
	if err := wire.WriteRequestsInto(c.w, reqs, &c.enc); err != nil {
		return nil, err
	}
	resps, err := wire.ReadResponsesInto(c.r, &c.dec)
	if err != nil {
		return nil, err
	}
	if len(resps) != len(reqs) {
		return nil, fmt.Errorf("client: %d responses for %d requests", len(resps), len(reqs)) //lint:allow noalloc protocol-violation error path; a correct server never triggers it
	}
	return resps, nil
}

// Get retrieves columns of one key (nil = all). ok is false if absent.
func (c *Client) Get(key []byte, cols []int) ([][]byte, bool, error) {
	resps, err := c.Do([]wire.Request{{Op: wire.OpGet, Key: key, Cols: cols}})
	if err != nil {
		return nil, false, err
	}
	if resps[0].Status != wire.StatusOK {
		return nil, false, nil
	}
	return resps[0].Cols, true, nil
}

// Put writes columns of one key and returns the new version.
func (c *Client) Put(key []byte, puts []wire.ColData) (uint64, error) {
	resps, err := c.Do([]wire.Request{{Op: wire.OpPut, Key: key, Puts: puts}})
	if err != nil {
		return 0, err
	}
	return resps[0].Version, nil
}

// PutSimple writes data as column 0 of key.
func (c *Client) PutSimple(key, data []byte) (uint64, error) {
	return c.Put(key, []wire.ColData{{Col: 0, Data: data}})
}

// CasPut conditionally writes columns of one key: the write applies only
// if the key's current version equals expect (0 = key absent). On success
// it returns the new version with ok true; on conflict, the key's current
// version with ok false. (OpCas is carried by the v1 framing too — only
// pipelining needs the v2 Conn.)
func (c *Client) CasPut(key []byte, expect uint64, puts []wire.ColData) (ver uint64, ok bool, err error) {
	resps, err := c.Do([]wire.Request{{Op: wire.OpCas, Key: key, ExpectVersion: expect, Puts: puts}})
	if err != nil {
		return 0, false, err
	}
	switch resps[0].Status {
	case wire.StatusOK:
		return resps[0].Version, true, nil
	case wire.StatusConflict:
		return resps[0].Version, false, nil
	}
	return 0, false, fmt.Errorf("client: cas status %d", resps[0].Status)
}

// GetVer is Get also returning the value's version — the token CasPut
// expects.
func (c *Client) GetVer(key []byte, cols []int) (vals [][]byte, ver uint64, ok bool, err error) {
	resps, err := c.Do([]wire.Request{{Op: wire.OpGet, Key: key, Cols: cols}})
	if err != nil {
		return nil, 0, false, err
	}
	if resps[0].Status != wire.StatusOK {
		return nil, 0, false, nil
	}
	return resps[0].Cols, resps[0].Version, true, nil
}

// Remove deletes one key; reports whether it existed.
func (c *Client) Remove(key []byte) (bool, error) {
	resps, err := c.Do([]wire.Request{{Op: wire.OpRemove, Key: key}})
	if err != nil {
		return false, err
	}
	return resps[0].Status == wire.StatusOK, nil
}

// GetRange returns up to n pairs starting at the first key >= start.
func (c *Client) GetRange(start []byte, n int, cols []int) ([]wire.Pair, error) {
	resps, err := c.Do([]wire.Request{{Op: wire.OpGetRange, Key: start, N: n, Cols: cols}})
	if err != nil {
		return nil, err
	}
	return resps[0].Pairs, nil
}

// Stats returns the server's numeric metrics. Non-numeric metrics (e.g.
// flush_last_error) are skipped; use StatsRaw to see everything.
func (c *Client) Stats() (map[string]int64, error) {
	raw, err := c.StatsRaw()
	if err != nil {
		return nil, err
	}
	return numericStats(raw), nil
}

// StatsRaw returns every metric the server reports, verbatim, including
// non-numeric ones like flush_last_error.
func (c *Client) StatsRaw() (map[string]string, error) {
	resps, err := c.Do([]wire.Request{{Op: wire.OpStats}})
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(resps[0].Pairs))
	for _, p := range resps[0].Pairs {
		out[string(p.Key)] = string(p.Cols[0])
	}
	return out, nil
}

// Send writes a request batch without waiting for its responses, allowing
// multiple batches in flight on the connection (pipelining). Each Send must
// eventually be matched by one Recv, in order.
func (c *Client) Send(reqs []wire.Request) error {
	return wire.WriteRequestsInto(c.w, reqs, &c.enc)
}

// Recv reads the next response batch for an earlier Send.
func (c *Client) Recv() ([]wire.Response, error) {
	return wire.ReadResponses(c.r)
}
