package cluster

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netfault"
	"repro/internal/server"
	"repro/internal/wire"
)

// The partition-torture harness: three live servers, each behind its own
// netfault proxy, a cluster client dialing the proxies, and a crew of
// workers hammering disjoint key ranges while the test schedules network
// faults against individual nodes. Invariants checked continuously and at
// the end:
//
//   - No acked write is ever lost: a key whose writes all acked must read
//     back exactly the last acked sequence number; a key that ever holds an
//     acked write must never read as absent (stores survive faults and
//     process rebirth).
//   - No reply is ever served by the wrong shard (ReadFailover off): reads
//     never observe a sequence number that was never written, and at the
//     end every key is resident on exactly its ring owner.
//   - Operations against a dead shard fail within one OpTimeout, and once
//     the breaker trips they fail fast — the goroutine count stays bounded
//     through the outage instead of growing one parked goroutine per op.
//   - A healed (or killed-and-reborn) node rejoins and serves without the
//     client being restarted.

// tortureWorker owns a disjoint set of keys (single writer per key) and
// tracks, per key, the last acked sequence number, the highest sequence
// ever attempted, and whether any write outcome is unknown (a put error
// taints the key: the write may or may not have landed, and a stale retry
// from a severed connection could even apply late, so only the relaxed
// invariants hold afterwards).
type tortureWorker struct {
	t    *testing.T
	cl   *Cluster
	id   int
	keys [][]byte

	acked   []uint64
	maxSeq  []uint64
	tainted []bool

	putErrs atomic.Uint64
	getErrs atomic.Uint64
}

func (w *tortureWorker) run(stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(int64(w.id)*7919 + 1))
	for {
		select {
		case <-stop:
			return
		default:
		}
		ki := rng.Intn(len(w.keys))
		switch op := rng.Intn(10); {
		case op < 5: // put
			seq := w.maxSeq[ki] + 1
			w.maxSeq[ki] = seq
			if _, err := w.cl.PutSimple(w.keys[ki], seqVal(seq)); err != nil {
				w.tainted[ki] = true
				w.putErrs.Add(1)
			} else {
				w.acked[ki] = seq
			}
		case op < 9: // get
			vals, _, ok, err := w.cl.Get(w.keys[ki], nil)
			if err != nil {
				w.getErrs.Add(1)
				continue
			}
			var v []byte
			if ok {
				v = vals[0]
			}
			w.check(ki, ok, v)
		default: // cross-shard batch get over a few of this worker's keys
			idxs := []int{ki, (ki + 1) % len(w.keys), (ki + 2) % len(w.keys)}
			keys := make([][]byte, len(idxs))
			for j, i := range idxs {
				keys[j] = w.keys[i]
			}
			resps, err := w.cl.GetBatch(keys, nil)
			if err != nil {
				w.getErrs.Add(1)
				continue
			}
			for j, i := range idxs {
				var v []byte
				ok := resps[j].Status == wire.StatusOK
				if ok && len(resps[j].Cols) > 0 {
					v = resps[j].Cols[0]
				}
				w.check(i, ok, v)
			}
		}
	}
}

// check validates one read result against the worker's write history.
func (w *tortureWorker) check(ki int, ok bool, val []byte) {
	key := w.keys[ki]
	if !ok {
		if w.acked[ki] > 0 {
			w.t.Errorf("worker %d key %q: ACKED WRITE LOST — seq %d was acked but the key reads absent",
				w.id, key, w.acked[ki])
		}
		return
	}
	seq, err := strconv.ParseUint(string(val), 10, 64)
	if err != nil {
		w.t.Errorf("worker %d key %q: garbage value %q", w.id, key, val)
		return
	}
	if seq > w.maxSeq[ki] {
		w.t.Errorf("worker %d key %q: read seq %d which was never written (max %d) — wrong-shard or foreign reply",
			w.id, key, seq, w.maxSeq[ki])
	}
	if !w.tainted[ki] && w.acked[ki] > 0 && seq != w.acked[ki] {
		w.t.Errorf("worker %d key %q: ACKED WRITE LOST — read seq %d, last acked %d (no write ever errored on this key)",
			w.id, key, seq, w.acked[ki])
	}
}

func seqVal(seq uint64) []byte { return []byte(strconv.FormatUint(seq, 10)) }

// torture wires nodes, proxies, cluster, workers, and a goroutine sampler
// into one harness the fault schedules drive.
type torture struct {
	t       *testing.T
	nodes   []testNode
	proxies []*netfault.Proxy
	cl      *Cluster
	cfg     Config
	workers []*tortureWorker

	stopCh   chan struct{}
	wg       sync.WaitGroup
	baseline int
	maxG     atomic.Int64
	sampStop chan struct{}
	sampDone chan struct{}
}

func newTorture(t *testing.T, nWorkers, keysPer int, mods ...func(*Config)) *torture {
	nodes := startNodes(t, 3)
	proxies, addrs := proxied(t, nodes)
	cfg := fastConfig(addrs)
	cfg.OpTimeout = 250 * time.Millisecond
	cfg.DialTimeout = 150 * time.Millisecond
	cfg.NodeFailures = 2
	cfg.DownFor = 50 * time.Millisecond
	cfg.ProbeInterval = 20 * time.Millisecond
	for _, m := range mods {
		m(&cfg)
	}
	tor := &torture{
		t: t, nodes: nodes, proxies: proxies, cfg: cfg,
		cl:     newCluster(t, cfg),
		stopCh: make(chan struct{}), sampStop: make(chan struct{}), sampDone: make(chan struct{}),
	}
	for wid := 0; wid < nWorkers; wid++ {
		keys := make([][]byte, keysPer)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("t%02d-%02d", wid, i))
		}
		tor.workers = append(tor.workers, &tortureWorker{
			t: t, cl: tor.cl, id: wid, keys: keys,
			acked: make([]uint64, keysPer), maxSeq: make([]uint64, keysPer),
			tainted: make([]bool, keysPer),
		})
	}
	return tor
}

// start warms one connection per node, snapshots the goroutine baseline,
// then launches the workers and the goroutine sampler.
func (tor *torture) start() {
	for v := range tor.nodes {
		if _, _, _, err := tor.cl.Get(tor.keyOwnedBy(v), nil); err != nil {
			tor.fatalf("warm-up read against node %d: %v", v, err)
		}
	}
	tor.baseline = runtime.NumGoroutine()
	go func() {
		defer close(tor.sampDone)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tor.sampStop:
				return
			case <-tick.C:
				if g := int64(runtime.NumGoroutine()); g > tor.maxG.Load() {
					tor.maxG.Store(g)
				}
			}
		}
	}()
	for _, w := range tor.workers {
		tor.wg.Add(1)
		go func(w *tortureWorker) {
			defer tor.wg.Done()
			w.run(tor.stopCh)
		}(w)
	}
}

// run lets the workload proceed under whatever faults are active.
func (tor *torture) run(d time.Duration) { time.Sleep(d) }

// fatalf fails the harness, dumping the cluster's flight recorder first:
// the node-health timeline (every trip, probe, and recovery with
// timestamps) is exactly the context a "never tripped" / "never healed"
// failure needs, and it is unrecoverable after the process exits.
func (tor *torture) fatalf(format string, args ...any) {
	tor.t.Helper()
	tor.t.Logf("cluster flight recorder at failure:\n%s", tor.cl.Recorder().DumpString())
	tor.t.Fatalf(format, args...)
}

func (tor *torture) keyOwnedBy(v int) []byte {
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("own-%d-%d", v, i))
		if tor.cl.Owner(k) == v {
			return k
		}
	}
}

// waitTripped waits for node v's breaker to have tripped at least once
// since the given count (trips is monotonic, so this does not race the
// Down→Probing flicker).
func (tor *torture) waitTripped(v int, since uint64) {
	deadline := time.Now().Add(10 * time.Second)
	for tor.cl.ClusterStats().Nodes[v].Trips <= since {
		if time.Now().After(deadline) {
			tor.fatalf("node %d never tripped", v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (tor *torture) waitUp(v int) {
	deadline := time.Now().Add(10 * time.Second)
	for tor.cl.ClusterStats().Nodes[v].State != NodeUp {
		if time.Now().After(deadline) {
			tor.fatalf("node %d never returned to Up", v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertFailFast checks a dead-shard op spends at most one OpTimeout — and
// once tripped it should not even spend that (no dial, no deadline wait).
func (tor *torture) assertFailFast(v int) {
	key := tor.keyOwnedBy(v)
	start := time.Now()
	if _, _, _, err := tor.cl.Get(key, nil); err == nil {
		tor.t.Errorf("read against dead node %d succeeded", v)
	}
	if el := time.Since(start); el > tor.cfg.OpTimeout {
		tor.t.Errorf("dead-shard op took %v, over the OpTimeout budget %v — not failing fast", el, tor.cfg.OpTimeout)
	}
}

// rebirth kills node v's server process and brings a new incarnation up on
// a fresh listener over the same store, behind the same proxy identity —
// the client keeps dialing the address it always knew.
func (tor *torture) rebirth(v int) {
	tor.nodes[v].srv.Close()
	srv := server.New(tor.nodes[v].store, 2)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		tor.fatalf("rebirth node %d: %v", v, err)
	}
	tor.t.Cleanup(func() { srv.Close() })
	tor.nodes[v].srv = srv
	tor.proxies[v].SetTarget(srv.Addr().String())
	tor.proxies[v].KillConns() // sever flows pinned to the dead incarnation
}

// finish stops the workload, checks the goroutine ceiling held through the
// faults, waits for every node to be Up, then runs the final verification:
// a fresh acked write+read per key (the healed cluster serves every shard
// with zero client restarts) and the residency sweep (every key on exactly
// its ring owner — no write was ever taken by the wrong shard).
func (tor *torture) finish() {
	t := tor.t
	close(tor.stopCh)
	tor.wg.Wait()
	close(tor.sampStop)
	<-tor.sampDone

	// Bounded goroutines through every outage: fail-fast means failed ops
	// park nothing. One goroutine per failed op would blow through this
	// ceiling within a single Down window.
	ceiling := int64(tor.baseline + 10*len(tor.workers) + 120)
	if max := tor.maxG.Load(); max > ceiling {
		t.Errorf("goroutines peaked at %d (baseline %d, ceiling %d): outages are leaking or parking goroutines",
			max, tor.baseline, ceiling)
	}

	for v := range tor.nodes {
		tor.waitUp(v)
	}
	// Quiet period: any request still buffered on a severed connection
	// drains or dies before the strict final pass.
	time.Sleep(2 * tor.cfg.OpTimeout)

	for _, w := range tor.workers {
		for ki, key := range w.keys {
			seq := w.maxSeq[ki] + 1
			var err error
			for attempt := 0; attempt < 8; attempt++ {
				if _, err = tor.cl.PutSimple(key, seqVal(seq)); err == nil {
					break
				}
				time.Sleep(100 * time.Millisecond) // stale pooled conn or probing node; retry
			}
			if err != nil {
				t.Errorf("healed cluster refused write to %q: %v", key, err)
				continue
			}
			vals, _, ok, gerr := tor.cl.Get(key, nil)
			if gerr != nil || !ok {
				t.Errorf("healed cluster lost just-acked %q: ok=%v err=%v", key, ok, gerr)
				continue
			}
			if got := string(vals[0]); got != string(seqVal(seq)) {
				t.Errorf("key %q: read %q after acking seq %d", key, got, seq)
			}
		}
	}

	for _, w := range tor.workers {
		for _, key := range w.keys {
			owner := tor.cl.Owner(key)
			for ni := range tor.nodes {
				sess := tor.nodes[ni].store.Session(0)
				_, resident := sess.GetValue(key)
				sess.Close()
				if resident != (ni == owner) {
					t.Errorf("key %q: resident=%v on node %d, ring owner is %d — shard ownership violated",
						key, resident, ni, owner)
				}
			}
		}
	}

	// The workload machinery itself must wind down: lingering growth here
	// means op goroutines outlived their operations.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= tor.baseline+60 {
			break
		} else if time.Now().After(deadline) {
			t.Errorf("goroutines never settled: %d now vs baseline %d", g, tor.baseline)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPartitionTorture is the base schedule: partition node 0, slow node 1,
// reset node 2, then kill node 0's process and rebirth it behind the same
// network identity — all under live load, with the full invariant sweep at
// the end. Runs in CI under -race; the exhaustive every-victim-every-fault
// schedule lives behind -tags slowtest.
func TestPartitionTorture(t *testing.T) {
	tor := newTorture(t, 6, 6)
	tor.start()
	tor.run(300 * time.Millisecond) // clean baseline

	// Partition: node 0 goes dark mid-flight (established flows freeze,
	// new dials hang until the dial timeout).
	trips0 := tor.cl.ClusterStats().Nodes[0].Trips
	tor.proxies[0].Blackhole()
	tor.waitTripped(0, trips0)
	tor.assertFailFast(0)
	tor.run(300 * time.Millisecond)
	tor.proxies[0].Heal()
	tor.waitUp(0)
	tor.run(200 * time.Millisecond)

	// Slow node: latency below the op timeout must degrade, not trip.
	tor.proxies[1].SetLatency(20 * time.Millisecond)
	tor.run(300 * time.Millisecond)
	tor.proxies[1].Heal()

	// Dead process, live kernel: connections reset on arrival.
	trips2 := tor.cl.ClusterStats().Nodes[2].Trips
	tor.proxies[2].Refuse()
	tor.waitTripped(2, trips2)
	tor.assertFailFast(2)
	tor.run(200 * time.Millisecond)
	tor.proxies[2].Heal()
	tor.waitUp(2)

	// Kill and rebirth node 0 on a fresh listener, same store, same proxy
	// identity — the client must resume against it without a restart.
	tor.rebirth(0)
	tor.run(300 * time.Millisecond)

	tor.finish()

	st := tor.cl.ClusterStats()
	if st.Failovers != 0 {
		t.Errorf("failovers=%d with ReadFailover off — a read was answered by a non-owner", st.Failovers)
	}
	if st.Nodes[0].Trips == 0 || st.Nodes[2].Trips == 0 {
		t.Errorf("victims never tripped: node0=%d node2=%d", st.Nodes[0].Trips, st.Nodes[2].Trips)
	}
	var puts, gets uint64
	for _, w := range tor.workers {
		puts += w.putErrs.Load()
		gets += w.getErrs.Load()
	}
	t.Logf("torture stats: trips=[%d %d %d] put_errs=%d get_errs=%d peak_goroutines=%d (baseline %d)",
		st.Nodes[0].Trips, st.Nodes[1].Trips, st.Nodes[2].Trips, puts, gets, tor.maxG.Load(), tor.baseline)
}
