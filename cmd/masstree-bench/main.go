// Command masstree-bench regenerates the paper's tables and figures
// (DESIGN.md's experiment index). Each experiment prints a text table whose
// rows mirror the paper's bars, series, or cells.
//
// Usage:
//
//	masstree-bench -run all
//	masstree-bench -run fig8,fig11 -keys 500000 -ops 1000000 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all' (ids: "+strings.Join(bench.IDs, ", ")+")")
		keys    = flag.Int("keys", 0, "dataset size (0 = default)")
		ops     = flag.Int("ops", 0, "measured operations (0 = default)")
		workers = flag.Int("workers", 0, "load-generating workers (0 = GOMAXPROCS)")
		batch   = flag.Int("batch", 0, "ops per client message in system benchmarks (0 = default)")
	)
	flag.Parse()

	sc := bench.Scale{Keys: *keys, Ops: *ops, Workers: *workers, Batch: *batch}
	ids := bench.IDs
	if *run != "all" {
		ids = nil
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if _, ok := bench.Registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "masstree-bench: unknown experiment %q (have: %s)\n", id, strings.Join(bench.IDs, ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	fmt.Printf("masstree-bench: GOMAXPROCS=%d, %s\n\n", runtime.GOMAXPROCS(0), time.Now().Format(time.RFC3339))
	for _, id := range ids {
		start := time.Now()
		tbl := bench.Registry[id](sc)
		fmt.Print(tbl.Render())
		fmt.Printf("(%s elapsed)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
