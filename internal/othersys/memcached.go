package othersys

import (
	"hash/fnv"

	"repro/internal/baseline/hashtable"
	"repro/internal/value"
)

// Memcachedlike models memcached as the paper ran it: 16 independent
// hash-table processes, keys partitioned by hash, no persistence, no range
// queries, whole-value storage. The client library batches gets (one
// round trip per shard per batch) but not puts (one round trip each), which
// is why memcached's update throughput craters in Figure 13.
type Memcachedlike struct {
	shards []*shard
	tables []*hashtable.Table
}

// NewMemcachedlike creates a store with the given shard count and expected
// capacity (bucket sizing).
func NewMemcachedlike(shards, capacity int) *Memcachedlike {
	m := &Memcachedlike{}
	for i := 0; i < shards; i++ {
		m.shards = append(m.shards, newShard())
		m.tables = append(m.tables, hashtable.New(3*capacity/shards+16))
	}
	return m
}

// Name implements Batcher.
func (m *Memcachedlike) Name() string { return "memcached-like" }

// SupportsRange implements Batcher: hash tables cannot scan in key order.
func (m *Memcachedlike) SupportsRange() bool { return false }

// SupportsColumnPut implements Batcher: memcached stores opaque values, so
// individual-column updates (MYCSB-A/B) are unsupported.
func (m *Memcachedlike) SupportsColumnPut() bool { return false }

func (m *Memcachedlike) shardFor(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32()) % len(m.shards)
}

// Exec implements Batcher. Gets are grouped per shard into one dispatch;
// every put dispatches alone.
func (m *Memcachedlike) Exec(worker int, ops []Op) []Result {
	res := make([]Result, len(ops))
	type idxOp struct {
		i  int
		op *Op
	}
	getsByShard := map[int][]idxOp{}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpGet:
			s := m.shardFor(op.Key)
			getsByShard[s] = append(getsByShard[s], idxOp{i, op})
		case OpPut:
			// Whole-value puts only: a put must cover columns 0..n-1
			// contiguously from 0 (an opaque value blob).
			if !wholeValue(op.Puts) {
				res[i] = Result{OK: false}
				continue
			}
			s := m.shardFor(op.Key)
			i := i
			m.shards[s].do(func() { // unbatched: one round trip per put
				cols := make([][]byte, len(op.Puts))
				for c, p := range op.Puts {
					cols[c] = p.Data
				}
				m.tables[s].Put(op.Key, value.New(cols...))
				res[i] = Result{OK: true}
			})
		case OpScan:
			res[i] = Result{OK: false}
		}
	}
	for s, batch := range getsByShard {
		s, batch := s, batch
		m.shards[s].do(func() { // batched: one round trip per shard
			for _, io := range batch {
				v, ok := m.tables[s].Get(io.op.Key)
				if !ok {
					res[io.i] = Result{OK: false}
					continue
				}
				res[io.i] = Result{OK: true, Cols: pickCols(v, io.op.Cols)}
			}
		})
	}
	return res
}

func wholeValue(puts []value.ColPut) bool {
	for i, p := range puts {
		if p.Col != i {
			return false
		}
	}
	return len(puts) > 0
}

func pickCols(v *value.Value, cols []int) [][]byte {
	if cols == nil {
		return v.Cols()
	}
	out := make([][]byte, len(cols))
	for i, c := range cols {
		out[i] = v.Col(c)
	}
	return out
}

// Close implements Batcher.
func (m *Memcachedlike) Close() {
	for _, s := range m.shards {
		s.close()
	}
}
