// Package binarytree implements the paper's "Binary" baseline (§6.2,
// Figure 8): a fast, concurrent, lock-free binary search tree. Each node
// holds a full key, a value pointer, and two child pointers; lookups are
// lockless descents and inserts publish nodes with compare-and-swap.
//
// Two of Figure 8's ladder steps are options here:
//
//   - WithIntCmp precomputes each key as big-endian 8-byte integer slices so
//     comparisons are native uint64 compares ("+IntCmp", §4.2's trick).
//   - WithArena allocates nodes from chunked slabs. The paper's "+Flow" and
//     "+Superpage" steps swap in the Streamflow allocator and 2 MB pages; Go
//     cannot swap its allocator, and slab placement is the closest analog —
//     fewer allocations and denser node placement (documented substitution,
//     DESIGN.md).
//
// The tree does not rebalance (neither did the paper's; its keys are random,
// which keeps expected depth logarithmic). Remove is a logical tombstone.
package binarytree

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"
	"unsafe"

	"repro/internal/value"
)

// Option configures a Tree.
type Option func(*Tree)

// WithIntCmp enables integer key comparison.
func WithIntCmp() Option { return func(t *Tree) { t.intCmp = true } }

// WithArena enables slab allocation of nodes.
func WithArena() Option { return func(t *Tree) { t.arena = newArena() } }

// Tree is a concurrent lock-free binary search tree.
type Tree struct {
	root   unsafe.Pointer // *node, atomic
	count  atomic.Int64
	intCmp bool
	arena  *arena
}

// node is a BST node. key and ikey are immutable after construction; val,
// left, and right are accessed atomically. A nil val is a tombstone.
type node struct {
	key   []byte
	ikey  []uint64 // big-endian 8-byte slices, when intCmp
	val   unsafe.Pointer
	left  unsafe.Pointer
	right unsafe.Pointer
}

// New creates an empty tree.
func New(opts ...Option) *Tree {
	t := &Tree{}
	for _, o := range opts {
		o(t)
	}
	return t
}

func encodeIkey(k []byte) []uint64 {
	out := make([]uint64, 0, (len(k)+7)/8)
	for i := 0; i < len(k); i += 8 {
		var buf [8]byte
		copy(buf[:], k[i:])
		out = append(out, binary.BigEndian.Uint64(buf[:]))
	}
	return out
}

// compare returns the order of search key k relative to n's key. In intCmp
// mode the stored side uses its precomputed big-endian slices and the probe
// side derives each 8-byte chunk on the fly (no allocation), the Go
// equivalent of the paper's native integer comparisons.
func (t *Tree) compare(k []byte, n *node) int {
	if t.intCmp {
		for i := 0; i < len(n.ikey); i++ {
			off := i * 8
			if off >= len(k) {
				return -1 // k is a strict prefix
			}
			var chunk uint64
			if len(k)-off >= 8 {
				chunk = binary.BigEndian.Uint64(k[off:])
			} else {
				var buf [8]byte
				copy(buf[:], k[off:])
				chunk = binary.BigEndian.Uint64(buf[:])
			}
			if chunk < n.ikey[i] {
				return -1
			}
			if chunk > n.ikey[i] {
				return 1
			}
		}
		switch {
		case len(k) < len(n.key):
			return -1
		case len(k) > len(n.key):
			return 1
		}
		return 0
	}
	return bytes.Compare(k, n.key)
}

// Get returns the value for key.
func (t *Tree) Get(key []byte) (*value.Value, bool) {
	n := (*node)(atomic.LoadPointer(&t.root))
	for n != nil {
		c := t.compare(key, n)
		if c == 0 {
			v := (*value.Value)(atomic.LoadPointer(&n.val))
			if v == nil {
				return nil, false // tombstone
			}
			return v, true
		}
		if c < 0 {
			n = (*node)(atomic.LoadPointer(&n.left))
		} else {
			n = (*node)(atomic.LoadPointer(&n.right))
		}
	}
	return nil, false
}

// Put stores v for key, reporting whether it replaced a live value.
func (t *Tree) Put(key []byte, v *value.Value) bool {
	for {
		addr := &t.root //lint:allow atomicfield address escapes into addr, which is only ever dereferenced via sync/atomic below
		n := (*node)(atomic.LoadPointer(addr))
		for n != nil {
			c := t.compare(key, n)
			if c == 0 {
				old := atomic.SwapPointer(&n.val, unsafe.Pointer(v))
				if old == nil {
					t.count.Add(1)
					return false
				}
				return true
			}
			if c < 0 {
				addr = &n.left //lint:allow atomicfield address escapes into addr, which is only ever dereferenced via sync/atomic
			} else {
				addr = &n.right //lint:allow atomicfield address escapes into addr, which is only ever dereferenced via sync/atomic
			}
			n = (*node)(atomic.LoadPointer(addr))
		}
		nn := t.alloc()
		nn.key = append([]byte(nil), key...)
		if t.intCmp {
			nn.ikey = encodeIkey(nn.key)
		}
		nn.val = unsafe.Pointer(v) //lint:allow atomicfield nn is private until the CAS below publishes it
		if atomic.CompareAndSwapPointer(addr, nil, unsafe.Pointer(nn)) {
			t.count.Add(1)
			return false
		}
		// Lost the race for this slot; retry from the root.
	}
}

// Remove tombstones key, reporting whether it was present.
func (t *Tree) Remove(key []byte) bool {
	n := (*node)(atomic.LoadPointer(&t.root))
	for n != nil {
		c := t.compare(key, n)
		if c == 0 {
			old := atomic.SwapPointer(&n.val, nil)
			if old != nil {
				t.count.Add(-1)
				return true
			}
			return false
		}
		if c < 0 {
			n = (*node)(atomic.LoadPointer(&n.left))
		} else {
			n = (*node)(atomic.LoadPointer(&n.right))
		}
	}
	return false
}

// Len returns the number of live keys.
func (t *Tree) Len() int { return int(t.count.Load()) }

func (t *Tree) alloc() *node {
	if t.arena != nil {
		return t.arena.alloc()
	}
	return &node{}
}

// arena is a chunked slab allocator for nodes: the Go-feasible analog of the
// paper's allocator ladder steps (see package comment).
type arena struct {
	chunk atomic.Pointer[arenaChunk]
}

type arenaChunk struct {
	nodes []node
	pos   atomic.Int64
}

const arenaChunkSize = 4096

func newArena() *arena {
	a := &arena{}
	a.chunk.Store(&arenaChunk{nodes: make([]node, arenaChunkSize)})
	return a
}

func (a *arena) alloc() *node {
	for {
		c := a.chunk.Load()
		i := c.pos.Add(1) - 1
		if int(i) < len(c.nodes) {
			return &c.nodes[i]
		}
		fresh := &arenaChunk{nodes: make([]node, arenaChunkSize)}
		a.chunk.CompareAndSwap(c, fresh)
	}
}
