package core

// permutation is the border node's 64-bit key permutation (§4.6.2).
//
// The word is divided into 16 four-bit subfields. The lowest 4 bits, nkeys,
// hold the number of live keys in the node (0–15). The remaining 15 nibbles
// form keyindex[15], a permutation of 0..14: keyindex[0..nkeys-1] are the
// slots of the node's live keys in increasing key order, and the remaining
// nibbles list currently-unused slots.
//
// A writer inserts a key by claiming an unused slot, filling the slot's key
// and value while it is invisible, and then publishing a new permutation with
// a single atomic 64-bit store. Readers see either the old order without the
// new key or the new order with it; no invalid intermediate state exists, so
// non-split inserts need no version increment.
type permutation uint64

// emptyPermutation has zero keys and the identity free list.
func emptyPermutation() permutation {
	var p uint64
	for i := 0; i < width; i++ {
		p |= uint64(i) << (4 * uint(i+1))
	}
	return permutation(p)
}

// count returns the number of live keys (nkeys).
func (p permutation) count() int { return int(p & 0xf) }

// slot returns keyindex[rank]: the slot holding the key with the given rank.
// rank may also address the free list (rank >= count).
func (p permutation) slot(rank int) int {
	return int(p >> (4 * uint(rank+1)) & 0xf)
}

// indexes unpacks keyindex into an array.
func (p permutation) indexes() [width]int {
	var a [width]int
	for i := 0; i < width; i++ {
		a[i] = p.slot(i)
	}
	return a
}

// pack builds a permutation from a keyindex array and key count.
func pack(a [width]int, count int) permutation {
	p := uint64(count)
	for i := 0; i < width; i++ {
		p |= uint64(a[i]) << (4 * uint(i+1))
	}
	return permutation(p)
}

// insert returns a permutation with a fresh slot inserted at the given rank,
// shifting later keys' ranks up by one, along with the claimed slot index.
// The permutation must not be full.
func (p permutation) insert(rank int) (permutation, int) {
	n := p.count()
	a := p.indexes()
	slot := a[n] // first free slot
	copy(a[rank+1:n+1], a[rank:n])
	a[rank] = slot
	return pack(a, n+1), slot
}

// remove returns a permutation with the key at the given rank removed; its
// slot moves to the head of the free list.
func (p permutation) remove(rank int) permutation {
	n := p.count()
	a := p.indexes()
	slot := a[rank]
	copy(a[rank:n-1], a[rank+1:n])
	a[n-1] = slot
	return pack(a, n-1)
}
