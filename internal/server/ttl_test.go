package server

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/wire"
)

// startCacheServer runs a server over a cache-mode store (bounded, with the
// maintenance loop ticking fast so sweeps and evictions actually run).
func startCacheServer(t *testing.T, maxBytes int) (*Server, string) {
	t.Helper()
	store, err := kvstore.Open(kvstore.Config{
		MaintainEvery: time.Millisecond,
		MaxBytes:      maxBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, 2)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return srv, srv.Addr().String()
}

// TestTTLOverV2 exercises the cache-mode wire surface end to end: PutTTL
// stores with a deadline, Touch extends it, an expired key reads NotFound,
// and the stats op reports the cache counters.
func TestTTLOverV2(t *testing.T) {
	_, addr := startCacheServer(t, 1<<30)
	conn, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.PutSimpleTTL([]byte("short"), []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.PutSimpleTTL([]byte("long"), []byte("w"), 3600); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := conn.Get([]byte("short"), nil); err != nil || !ok {
		t.Fatalf("unexpired key missing: %v %v", ok, err)
	}
	if _, ok, err := conn.Touch([]byte("long"), 7200); err != nil || !ok {
		t.Fatalf("touch live key: %v %v", ok, err)
	}
	if _, ok, err := conn.Touch([]byte("absent"), 60); err != nil || ok {
		t.Fatalf("touch absent key: %v %v", ok, err)
	}
	// TTL 0 via PutTTL behaves like a plain put (never expires).
	if _, err := conn.PutSimpleTTL([]byte("forever"), []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := conn.Get([]byte("forever"), nil); !ok {
		t.Fatal("ttl-0 key missing")
	}

	raw, err := conn.StatsRaw()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bytes_live", "max_bytes", "evictions", "expirations", "ghost_hits", "admit_drops", "flush_errors"} {
		if _, ok := raw[want]; !ok {
			t.Fatalf("stats missing %q: %v", want, raw)
		}
	}
	stats, err := conn.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["bytes_live"] <= 0 {
		t.Fatalf("bytes_live = %d, want > 0", stats["bytes_live"])
	}
}

// TestTTLExpiresOverWire verifies a short-TTL key becomes invisible to
// remote reads once its deadline passes (lazy expiry; no sweep needed).
// The server computes deadlines from wire TTL seconds, so the shortest
// expressible TTL is 1s — the test waits it out.
func TestTTLExpiresOverWire(t *testing.T) {
	_, addr := startCacheServer(t, 0) // TTLs work without a byte budget too
	conn, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.PutSimpleTTL([]byte("blink"), []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, ok, err := conn.Get([]byte("blink"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break // expired
		}
		if time.Now().After(deadline) {
			t.Fatal("key did not expire within 5s of a 1s TTL")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if _, ok, err := conn.Touch([]byte("blink"), 60); err != nil || ok {
		t.Fatalf("touch revived an expired key: %v %v", ok, err)
	}
}

// TestTTLRejectedOnV1 pins the protocol boundary: OpPutTTL and OpTouch are
// v2 surface, and a v1 connection answering them gets StatusError while the
// rest of its batch executes normally — v1 semantics untouched.
func TestTTLRejectedOnV1(t *testing.T) {
	srv, addr := startCacheServer(t, 1<<30)
	c, err := client.Dial(addr) // v1: no hello
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resps, err := c.Do([]wire.Request{
		{Op: wire.OpPut, Key: []byte("k"), Puts: []wire.ColData{{Col: 0, Data: []byte("v")}}},
		{Op: wire.OpPutTTL, Key: []byte("t"), Puts: []wire.ColData{{Col: 0, Data: []byte("v")}}, TTL: 60},
		{Op: wire.OpTouch, Key: []byte("k"), TTL: 60},
		{Op: wire.OpGet, Key: []byte("k")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Status != wire.StatusOK || resps[3].Status != wire.StatusOK {
		t.Fatalf("plain v1 ops broken: %+v", resps)
	}
	if resps[1].Status != wire.StatusError || resps[2].Status != wire.StatusError {
		t.Fatalf("TTL ops not rejected on v1: %+v", resps)
	}
	if got := srv.erroredRequests.Load(); got != 2 {
		t.Fatalf("errored_requests = %d, want 2", got)
	}
	// The rejected OpPutTTL must not have stored anything.
	if _, ok, _ := c.Get([]byte("t"), nil); ok {
		t.Fatal("v1 OpPutTTL stored a value despite StatusError")
	}
}
