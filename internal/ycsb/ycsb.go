// Package ycsb implements MYCSB, the paper's modified Yahoo! Cloud Serving
// Benchmark (§7): zipfian key popularity over a fixed record set, keys of
// 5–24 bytes ("user" plus a decimal id), values of ten 4-byte columns.
// Reads fetch all ten columns; updates modify one 4-byte column; MYCSB-E's
// scans return one column for n adjacent keys, n uniform in [1, 100].
// Unlike stock YCSB, puts modify existing keys rather than inserting, which
// preserves the popularity distribution across client processes.
//
// Workloads: A = 50% get / 50% put, B = 95/5, C = all gets,
// E = 95% getrange / 5% put.
package ycsb

import (
	"fmt"
	"math/rand"

	"repro/internal/workload"
)

// Kind is an operation type.
type Kind uint8

// Operation kinds.
const (
	Read   Kind = iota // get all columns
	Update             // put one column
	ScanOp             // getrange, one column
)

// NumColumns and ColumnSize are the paper's value shape: small columns
// ensure no workload is bottlenecked by network or SSD bandwidth.
const (
	NumColumns = 10
	ColumnSize = 4
)

// MaxScanLen bounds getrange lengths (uniform 1..MaxScanLen).
const MaxScanLen = 100

// Op is one benchmark operation.
type Op struct {
	Kind    Kind
	Key     []byte
	Col     int    // column for Update and ScanOp
	Data    []byte // Update payload (ColumnSize bytes)
	ScanLen int    // ScanOp length
}

// Source generates one client's operation stream. Not safe for concurrent
// use; create one per worker.
type Source struct {
	name    string
	readPct int
	scanPct int
	keys    workload.KeyGen
	rng     *rand.Rand
}

// New creates a MYCSB source. name is one of "A", "B", "C", "E"; records is
// the database size the keys are drawn over (zipfian-popular).
func New(name string, records uint64, seed int64) (*Source, error) {
	s := &Source{name: name, keys: workload.ZipfKeys(seed, records), rng: rand.New(rand.NewSource(seed ^ 0x5bd1e995))}
	switch name {
	case "A":
		s.readPct = 50
	case "B":
		s.readPct = 95
	case "C":
		s.readPct = 100
	case "E":
		s.scanPct = 95
	default:
		return nil, fmt.Errorf("ycsb: unknown workload %q (want A, B, C, or E)", name)
	}
	return s, nil
}

// Name returns the workload name.
func (s *Source) Name() string { return s.name }

// Next returns the next operation.
func (s *Source) Next() Op {
	k := s.keys.Next()
	r := s.rng.Intn(100)
	switch {
	case s.scanPct > 0 && r < s.scanPct:
		return Op{Kind: ScanOp, Key: k, Col: s.rng.Intn(NumColumns), ScanLen: 1 + s.rng.Intn(MaxScanLen)}
	case s.scanPct > 0:
		return Op{Kind: Update, Key: k, Col: s.rng.Intn(NumColumns), Data: s.payload()}
	case r < s.readPct:
		return Op{Kind: Read, Key: k}
	default:
		return Op{Kind: Update, Key: k, Col: s.rng.Intn(NumColumns), Data: s.payload()}
	}
}

func (s *Source) payload() []byte {
	b := make([]byte, ColumnSize)
	s.rng.Read(b)
	return b
}

// LoadRecord returns record i's key and initial columns for database
// pre-population.
func LoadRecord(i uint64) (key []byte, cols [][]byte) {
	key = workload.RecordKey(i)
	cols = make([][]byte, NumColumns)
	for c := range cols {
		col := make([]byte, ColumnSize)
		col[0] = byte(i)
		col[1] = byte(i >> 8)
		col[2] = byte(c)
		col[3] = byte(i>>16) ^ byte(c)
		cols[c] = col
	}
	return key, cols
}

// AllCols is the column list for full-value reads.
var AllCols = func() []int {
	out := make([]int, NumColumns)
	for i := range out {
		out[i] = i
	}
	return out
}()
