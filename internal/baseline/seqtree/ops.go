package seqtree

import (
	"bytes"

	"repro/internal/value"
)

// Remove deletes key, returning the removed value. Empty border nodes are
// removed from their parents immediately (no deferral is needed without
// concurrency), and empty trie layers collapse back into the parent slot.
func (t *Tree) Remove(key []byte) (*value.Value, bool) {
	old, removed, _ := removeLayer(&t.root, key)
	if removed {
		t.count--
	}
	return old, removed
}

// removeLayer removes key's remainder from the layer tree at *rootp.
// emptied reports that the whole layer became empty.
func removeLayer(rootp **node, k []byte) (old *value.Value, removed, emptied bool) {
	slice, ord := keySlice(k), keyOrd(k)
	n := descend(*rootp, slice)
	rank, found := n.search(slice, ord)
	if !found {
		return nil, false, false
	}
	switch n.keylen[rank] {
	case klLayer:
		old, removed, subEmpty := removeLayer(&n.layer[rank], k[8:])
		if subEmpty {
			// Collapse the empty layer: drop the link slot.
			n.removeAt(rank)
			cleanupAfterRemove(rootp, n)
		}
		return old, removed, layerEmpty(*rootp)
	case klSuffix:
		if !bytes.Equal(n.suffix[rank], k[8:]) {
			return nil, false, false
		}
	}
	old = n.val[rank]
	n.removeAt(rank)
	cleanupAfterRemove(rootp, n)
	return old, true, layerEmpty(*rootp)
}

// layerEmpty reports whether a layer tree holds no keys at all.
func layerEmpty(root *node) bool { return root.border && root.nkeys == 0 }

func (n *node) removeAt(rank int) {
	copy(n.slices[rank:], n.slices[rank+1:n.nkeys])
	copy(n.keylen[rank:], n.keylen[rank+1:n.nkeys])
	copy(n.suffix[rank:], n.suffix[rank+1:n.nkeys])
	copy(n.val[rank:], n.val[rank+1:n.nkeys])
	copy(n.layer[rank:], n.layer[rank+1:n.nkeys])
	n.nkeys--
	n.suffix[n.nkeys], n.val[n.nkeys], n.layer[n.nkeys] = nil, nil, nil
}

// cleanupAfterRemove unlinks n if it emptied (unless it is the layer root),
// removing empty interior ancestors as it goes — deletion without
// rebalancing, as in the paper. A root interior left with one child
// collapses the tree height.
func cleanupAfterRemove(rootp **node, n *node) {
	if n.nkeys > 0 || *rootp == n {
		return
	}
	path := pathToBorder(*rootp, n)
	child := n
	for i := len(path) - 1; i >= 0; i-- {
		p := path[i]
		idx := -1
		for j := 0; j <= p.nkeys; j++ {
			if p.child[j] == child {
				idx = j
				break
			}
		}
		if idx < 0 {
			return
		}
		if p.nkeys == 0 {
			// p's only child is going away: p empties too.
			p.child[0] = nil
			if p == *rootp {
				*rootp = &node{border: true}
				return
			}
			child = p
			continue
		}
		if idx == 0 {
			copy(p.slices[0:], p.slices[1:p.nkeys])
			copy(p.child[0:], p.child[1:p.nkeys+1])
		} else {
			copy(p.slices[idx-1:], p.slices[idx:p.nkeys])
			copy(p.child[idx:], p.child[idx+1:p.nkeys+1])
		}
		p.child[p.nkeys] = nil
		p.nkeys--
		if p == *rootp && p.nkeys == 0 {
			*rootp = p.child[0] // collapse root height
		}
		return
	}
}

// pathToBorder routes to an empty border node by searching exhaustively
// from the parent chain recorded during descent. Because the node is empty
// it has no slice to route by, so we walk the tree; removal is off the hot
// path and sequential trees are small per layer.
func pathToBorder(root, target *node) []*node {
	var dfs func(n *node, acc []*node) []*node
	if root == target {
		return nil
	}
	dfs = func(n *node, acc []*node) []*node {
		if n.border {
			return nil
		}
		acc = append(acc, n)
		for i := 0; i <= n.nkeys; i++ {
			c := n.child[i]
			if c == target {
				return append([]*node(nil), acc...)
			}
			if c != nil && !c.border {
				if r := dfs(c, acc); r != nil {
					return r
				}
			}
		}
		return nil
	}
	return dfs(root, nil)
}

// Scan visits keys >= start in order until fn returns false.
func (t *Tree) Scan(start []byte, fn func(key []byte, v *value.Value) bool) {
	scanLayer(t.root, start, nil, fn)
}

// GetRange returns up to n pairs from the first key >= start.
func (t *Tree) GetRange(start []byte, n int) (keys [][]byte, vals []*value.Value) {
	t.Scan(start, func(k []byte, v *value.Value) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return len(keys) < n
	})
	return keys, vals
}

func scanLayer(root *node, start, prefix []byte, fn func([]byte, *value.Value) bool) bool {
	return scanNode(root, start, prefix, fn)
}

func scanNode(n *node, start, prefix []byte, fn func([]byte, *value.Value) bool) bool {
	if !n.border {
		slice := keySlice(start)
		from := 0
		if len(start) > 0 {
			for from < n.nkeys && slice >= n.slices[from] {
				from++
			}
		}
		for i := from; i <= n.nkeys; i++ {
			s := start
			if i > from {
				s = nil
			}
			if !scanNode(n.child[i], s, prefix, fn) {
				return false
			}
		}
		return true
	}
	for i := 0; i < n.nkeys; i++ {
		var rem []byte
		switch n.keylen[i] {
		case klLayer:
			rem = sliceBytes(n.slices[i], 8)
			var substart []byte
			if start != nil {
				if bytes.HasPrefix(start, rem) {
					substart = start[8:]
				} else if bytes.Compare(rem, start) < 0 {
					continue
				}
			}
			full := append(append([]byte(nil), prefix...), rem...)
			if !scanLayer(n.layer[i], substart, full, fn) {
				return false
			}
			continue
		case klSuffix:
			rem = append(sliceBytes(n.slices[i], 8), n.suffix[i]...)
		default:
			rem = sliceBytes(n.slices[i], int(n.keylen[i]))
		}
		if start != nil && bytes.Compare(rem, start) < 0 {
			continue
		}
		full := append(append([]byte(nil), prefix...), rem...)
		if !fn(full, n.val[i]) {
			return false
		}
	}
	return true
}

func sliceBytes(s uint64, n int) []byte {
	var buf [8]byte
	for i := 7; i >= 0; i-- {
		buf[i] = byte(s)
		s >>= 8
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	return out
}
