package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
)

// Repro: a Sync failure (write succeeded, force failed) must not lose
// subsequently appended records.
func TestSyncFailureThenRecover(t *testing.T) {
	dir := t.TempDir()
	w, err := newWriter(vfs.OS{}, dir, 0, 1, true, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	w.AppendPut(1, 0, []byte("a"), nil)
	// Replace the fd with a read-only one so Write succeeds? Simpler: make
	// Sync fail by using a file opened read... instead swap f for one where
	// Write works but Sync fails: use /dev/null? Sync on /dev/null succeeds.
	// Use a pipe: writes succeed, Sync fails with EINVAL.
	r, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	real := w.f
	w.f = vfs.NewOSFile(pw)
	if err := w.Flush(); err == nil {
		t.Fatal("expected sync failure on pipe")
	}
	pw.Close()
	w.f = real

	// Subsequent records must survive into the real log.
	w.AppendPut(2, 0, []byte("b"), nil)
	if err := w.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	w.sync = false
	data, err := os.ReadFile(filepath.Join(dir, LogFileName(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	b := data[len(fileMagic):]
	for len(b) > 0 {
		rec, n := parseRecord(b, false)
		if n == 0 {
			break
		}
		if rec.TS == 2 {
			found = true
		}
		b = b[n:]
	}
	if !found {
		t.Fatalf("record ts=2 lost after transient sync failure; log bytes=%d", len(data))
	}
}
