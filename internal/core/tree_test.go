package core

import (
	"fmt"
	"testing"

	"repro/internal/value"
)

func mustGet(t *testing.T, tr *Tree, key, want string) {
	t.Helper()
	v, ok := tr.Get([]byte(key))
	if !ok {
		t.Fatalf("Get(%q): not found", key)
	}
	if got := string(v.Bytes()); got != want {
		t.Fatalf("Get(%q) = %q, want %q", key, got, want)
	}
}

func mustMiss(t *testing.T, tr *Tree, key string) {
	t.Helper()
	if v, ok := tr.Get([]byte(key)); ok {
		t.Fatalf("Get(%q) = %q, want miss", key, v.Bytes())
	}
}

func put(tr *Tree, key, val string) (*value.Value, bool) {
	return tr.Put([]byte(key), value.New([]byte(val)))
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	mustMiss(t, tr, "a")
	mustMiss(t, tr, "")
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Remove([]byte("a")); ok {
		t.Fatal("Remove on empty tree reported success")
	}
}

func TestBasicPutGet(t *testing.T) {
	tr := New()
	put(tr, "hello", "world")
	mustGet(t, tr, "hello", "world")
	mustMiss(t, tr, "hell")
	mustMiss(t, tr, "hello!")
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	old, replaced := put(tr, "hello", "there")
	if !replaced || string(old.Bytes()) != "world" {
		t.Fatalf("replace: old=%v replaced=%v", old, replaced)
	}
	mustGet(t, tr, "hello", "there")
	if tr.Len() != 1 {
		t.Fatalf("Len after replace = %d", tr.Len())
	}
}

func TestEmptyKeyAndNulKeys(t *testing.T) {
	tr := New()
	put(tr, "", "empty")
	put(tr, "\x00", "one-nul")
	put(tr, "\x00\x00", "two-nul")
	put(tr, "ABCDEFG", "seven")
	put(tr, "ABCDEFG\x00", "eight-nul")
	mustGet(t, tr, "", "empty")
	mustGet(t, tr, "\x00", "one-nul")
	mustGet(t, tr, "\x00\x00", "two-nul")
	mustGet(t, tr, "ABCDEFG", "seven")
	mustGet(t, tr, "ABCDEFG\x00", "eight-nul")
	mustMiss(t, tr, "\x00\x00\x00")
}

// TestPaperLayerExample runs the exact sequence of §4.1.
func TestPaperLayerExample(t *testing.T) {
	tr := New()
	// 1. put("01234567AB") stores slice + suffix "AB" in the root layer.
	put(tr, "01234567AB", "v1")
	mustGet(t, tr, "01234567AB", "v1")
	if s := tr.Stats(); s.LayerCreations != 0 {
		t.Fatalf("premature layer creation: %+v", s)
	}
	// 2. put("01234567XY") shares the 8-byte prefix: a layer-1 tree appears;
	// both keys remain visible throughout.
	put(tr, "01234567XY", "v2")
	if s := tr.Stats(); s.LayerCreations != 1 {
		t.Fatalf("expected one layer creation, got %+v", s)
	}
	mustGet(t, tr, "01234567AB", "v1")
	mustGet(t, tr, "01234567XY", "v2")
	mustMiss(t, tr, "01234567")
	mustMiss(t, tr, "01234567AZ")
	// 3. remove("01234567XY") deletes "XY" from the layer-1 tree; "AB" stays.
	if _, ok := tr.Remove([]byte("01234567XY")); !ok {
		t.Fatal("remove failed")
	}
	mustGet(t, tr, "01234567AB", "v1")
	mustMiss(t, tr, "01234567XY")
}

func TestDeepSharedPrefix(t *testing.T) {
	tr := New()
	// 64-byte shared prefix forces at least 8 layers (§4.1 Balance).
	prefix := ""
	for i := 0; i < 8; i++ {
		prefix += "PFX" + fmt.Sprintf("%05d", i)
	}
	keys := []string{prefix + "aaa", prefix + "bbb", prefix + "ccc", prefix[:20], prefix}
	for i, k := range keys {
		put(tr, k, fmt.Sprintf("v%d", i))
	}
	for i, k := range keys {
		mustGet(t, tr, k, fmt.Sprintf("v%d", i))
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	// Keys sharing the prefix must have created layers.
	if s := tr.Stats(); s.LayerCreations == 0 {
		t.Fatal("expected layer creations")
	}
}

func TestSequentialInsertSplits(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		put(tr, fmt.Sprintf("key%06d", i), fmt.Sprintf("val%d", i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		mustGet(t, tr, fmt.Sprintf("key%06d", i), fmt.Sprintf("val%d", i))
	}
	if s := tr.Stats(); s.Splits == 0 {
		t.Fatal("expected splits")
	}
}

func TestReverseSequentialInsert(t *testing.T) {
	tr := New()
	const n = 1000
	for i := n - 1; i >= 0; i-- {
		put(tr, fmt.Sprintf("key%06d", i), "v")
	}
	for i := 0; i < n; i++ {
		mustGet(t, tr, fmt.Sprintf("key%06d", i), "v")
	}
}

func TestUpdateRMW(t *testing.T) {
	tr := New()
	old, stored := tr.Update([]byte("ctr"), func(old *value.Value) *value.Value {
		if old != nil {
			t.Fatal("old should be nil on first update")
		}
		return value.New([]byte{1})
	})
	if old != nil || stored.Bytes()[0] != 1 {
		t.Fatal("first update wrong")
	}
	for i := 0; i < 10; i++ {
		tr.Update([]byte("ctr"), func(old *value.Value) *value.Value {
			return value.New([]byte{old.Bytes()[0] + 1})
		})
	}
	v, _ := tr.Get([]byte("ctr"))
	if v.Bytes()[0] != 11 {
		t.Fatalf("counter = %d, want 11", v.Bytes()[0])
	}
}

func TestRemoveEverythingThenReuse(t *testing.T) {
	tr := New()
	const n = 500
	for i := 0; i < n; i++ {
		put(tr, fmt.Sprintf("k%05d", i), "v")
	}
	for i := 0; i < n; i++ {
		if _, ok := tr.Remove([]byte(fmt.Sprintf("k%05d", i))); !ok {
			t.Fatalf("remove %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after removing all", tr.Len())
	}
	for i := 0; i < n; i++ {
		mustMiss(t, tr, fmt.Sprintf("k%05d", i))
	}
	if s := tr.Stats(); s.NodeDeletes == 0 {
		t.Fatal("expected node deletions")
	}
	// The tree must remain fully usable.
	for i := 0; i < n; i++ {
		put(tr, fmt.Sprintf("k%05d", i), "v2")
	}
	for i := 0; i < n; i++ {
		mustGet(t, tr, fmt.Sprintf("k%05d", i), "v2")
	}
}

func TestLayerCollapseMaintenance(t *testing.T) {
	tr := New()
	put(tr, "01234567AB", "v1")
	put(tr, "01234567XY", "v2")
	tr.Remove([]byte("01234567XY"))
	tr.Remove([]byte("01234567AB"))
	if tr.PendingMaintenance() == 0 {
		t.Fatal("expected a pending layer-collapse task")
	}
	tr.Maintain()
	if s := tr.Stats(); s.LayerCollapses != 1 {
		t.Fatalf("LayerCollapses = %d, want 1", s.LayerCollapses)
	}
	// Reinsert through the collapsed region.
	put(tr, "01234567AB", "v3")
	mustGet(t, tr, "01234567AB", "v3")
}

func TestLayerCollapseSkipsRevivedLayer(t *testing.T) {
	tr := New()
	put(tr, "01234567AB", "v1")
	put(tr, "01234567XY", "v2")
	tr.Remove([]byte("01234567XY"))
	tr.Remove([]byte("01234567AB"))
	// Revive the layer before maintenance runs.
	put(tr, "01234567CD", "v3")
	tr.Maintain()
	mustGet(t, tr, "01234567CD", "v3")
	if s := tr.Stats(); s.LayerCollapses != 0 {
		t.Fatalf("collapsed a live layer: %+v", s)
	}
}

func TestSameSliceGroup(t *testing.T) {
	tr := New()
	// All 9 prefixes of one 8-byte string share a slice representation and
	// must coexist in one border node (§4.2: up to 10 keys per slice).
	base := "ABCDEFGH"
	for i := 0; i <= 8; i++ {
		put(tr, base[:i], fmt.Sprintf("v%d", i))
	}
	put(tr, base+"-long", "v9") // the one >8-byte key for this slice
	for i := 0; i <= 8; i++ {
		mustGet(t, tr, base[:i], fmt.Sprintf("v%d", i))
	}
	mustGet(t, tr, base+"-long", "v9")
	// Force surrounding splits and re-check the group stayed intact.
	for i := 0; i < 500; i++ {
		put(tr, fmt.Sprintf("ZZ%06d", i), "z")
	}
	for i := 0; i <= 8; i++ {
		mustGet(t, tr, base[:i], fmt.Sprintf("v%d", i))
	}
}

func TestValueVersionsAdvance(t *testing.T) {
	tr := New()
	tr.Update([]byte("k"), func(old *value.Value) *value.Value {
		return value.Apply(old, []value.ColPut{{Col: 0, Data: []byte("a")}})
	})
	v1, _ := tr.Get([]byte("k"))
	tr.Update([]byte("k"), func(old *value.Value) *value.Value {
		return value.Apply(old, []value.ColPut{{Col: 1, Data: []byte("b")}})
	})
	v2, _ := tr.Get([]byte("k"))
	if v2.Version() <= v1.Version() {
		t.Fatalf("versions not increasing: %d then %d", v1.Version(), v2.Version())
	}
	if string(v2.Col(0)) != "a" || string(v2.Col(1)) != "b" {
		t.Fatalf("columns wrong: %v", v2)
	}
}
