package kvstore

import (
	"os"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/wal"
)

// TestExpiredBaseNotResurrected pins the write-side half of lazy expiry: a
// put over a lazily-expired value builds on an absent base, so a partial-
// column put must not revive the dead value's other columns — in memory and
// across recovery (the implicit remove is logged ahead of the put).
func TestExpiredBaseNotResurrected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 1, MaintainEvery: -1, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	past := nowNanos() - 1
	s.PutTTL(0, []byte("k"), []value.ColPut{
		{Col: 0, Data: []byte("col0-old")},
		{Col: 1, Data: []byte("col1-secret")},
	}, past)
	// The key reads as absent; a partial put of column 0 lands on it.
	if _, ok := s.Get([]byte("k"), nil); ok {
		t.Fatal("expired key visible")
	}
	s.Put(0, []byte("k"), []value.ColPut{{Col: 0, Data: []byte("col0-new")}})

	check := func(st *Store, label string) {
		t.Helper()
		cols, ok := st.Get([]byte("k"), nil)
		if !ok {
			t.Fatalf("%s: key missing", label)
		}
		if len(cols) != 1 || string(cols[0]) != "col0-new" {
			t.Fatalf("%s: got %q, want only col0-new (dead col1 must not resurrect)", label, cols)
		}
		v, _ := st.Tree().Get([]byte("k"))
		if v.ExpiresAt() != 0 {
			t.Fatalf("%s: plain put kept the dead value's expiry %d", label, v.ExpiresAt())
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Config{Dir: dir, Workers: 1, MaintainEvery: -1, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	check(r, "recovered")
}

// TestExpiredBaseBatch is TestExpiredBaseNotResurrected through the batched
// put path, mixing expired and live bases in one batch.
func TestExpiredBaseBatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 1, MaintainEvery: -1, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	past, future := nowNanos()-1, nowNanos()+uint64(time.Hour)
	s.PutTTL(0, []byte("dead"), []value.ColPut{
		{Col: 0, Data: []byte("d0")}, {Col: 1, Data: []byte("d1")},
	}, past)
	s.PutTTL(0, []byte("live"), []value.ColPut{
		{Col: 0, Data: []byte("l0")}, {Col: 1, Data: []byte("l1")},
	}, future)
	keys := [][]byte{[]byte("dead"), []byte("live")}
	puts := [][]value.ColPut{
		{{Col: 0, Data: []byte("d0-new")}},
		{{Col: 0, Data: []byte("l0-new")}},
	}
	s.PutBatch(0, keys, puts)

	check := func(st *Store, label string) {
		t.Helper()
		cols, ok := st.Get([]byte("dead"), nil)
		if !ok || len(cols) != 1 || string(cols[0]) != "d0-new" {
			t.Fatalf("%s: dead-base key: %q ok=%v, want only d0-new", label, cols, ok)
		}
		cols, ok = st.Get([]byte("live"), nil)
		if !ok || len(cols) != 2 || string(cols[0]) != "l0-new" || string(cols[1]) != "l1" {
			t.Fatalf("%s: live-base key: %q ok=%v, want [l0-new l1]", label, cols, ok)
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Config{Dir: dir, Workers: 1, MaintainEvery: -1, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	check(r, "recovered")
}

// TestCleanDropThenPartialPutRecovery pins the insert-record anchoring
// (wal.OpInsert): a clean drop (TTL sweep or eviction) writes no WAL
// record, so the dropped value's put records survive in the log; the first
// write after the drop executes against nil and must therefore replay as a
// replacement — otherwise recovery merges the dropped value's stale columns
// into the new one, fabricating a state no serial execution produced. This
// is the exact divergence the end-to-end drive caught: live col0-only,
// recovered col0+stale columns.
func TestCleanDropThenPartialPutRecovery(t *testing.T) {
	for _, drop := range []string{"sweep", "evict"} {
		t.Run(drop, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(Config{Dir: dir, Workers: 2, MaintainEvery: -1, FlushInterval: time.Hour, MaxBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			exp := nowNanos() - 1 // already lapsed
			if drop == "evict" {
				exp = nowNanos() + uint64(time.Hour)
			}
			s.PutTTL(0, []byte("k"), []value.ColPut{
				{Col: 0, Data: []byte("old0")},
				{Col: 1, Data: []byte("stale-secret")},
				{Col: 5, Data: []byte("stale-tail")},
			}, exp)
			switch drop {
			case "sweep":
				s.cacheMaintain() // physically removes the lapsed value
			case "evict":
				if !s.evictKey([]byte("k")) {
					t.Fatal("evict failed")
				}
			}
			if _, ok := s.tree.Get([]byte("k")); ok {
				t.Fatal("key not dropped")
			}
			// The first write after the drop: a partial, single-column put.
			ver := s.Put(1, []byte("k"), []value.ColPut{{Col: 0, Data: []byte("fresh")}})
			check := func(st *Store, label string) {
				t.Helper()
				cols, ok := st.Get([]byte("k"), nil)
				if !ok || len(cols) != 1 || string(cols[0]) != "fresh" {
					t.Fatalf("%s: got %q ok=%v, want exactly [fresh] (no stale columns)", label, cols, ok)
				}
				v, _ := st.Tree().Get([]byte("k"))
				if v.Version() != ver {
					t.Fatalf("%s: version %d, want %d", label, v.Version(), ver)
				}
			}
			check(s, "live")
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := Open(Config{Dir: dir, Workers: 2, MaintainEvery: -1, FlushInterval: time.Hour, MaxBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			check(r, "recovered")
		})
	}
}

// TestCleanDropThenBatchPutRecovery is the batched-write variant: the batch
// mixes a post-drop insert with a plain update, and recovery must keep the
// insert a replacement and the update a merge.
func TestCleanDropThenBatchPutRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 1, MaintainEvery: -1, FlushInterval: time.Hour, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(0, []byte("dropped"), []value.ColPut{
		{Col: 0, Data: []byte("a0")}, {Col: 3, Data: []byte("a3")},
	})
	s.Put(0, []byte("kept"), []value.ColPut{
		{Col: 0, Data: []byte("b0")}, {Col: 1, Data: []byte("b1")},
	})
	if !s.evictKey([]byte("dropped")) {
		t.Fatal("evict failed")
	}
	s.PutBatch(0, [][]byte{[]byte("dropped"), []byte("kept")}, [][]value.ColPut{
		{{Col: 0, Data: []byte("new0")}},
		{{Col: 0, Data: []byte("b0-new")}},
	})
	check := func(st *Store, label string) {
		t.Helper()
		cols, ok := st.Get([]byte("dropped"), nil)
		if !ok || len(cols) != 1 || string(cols[0]) != "new0" {
			t.Fatalf("%s: dropped key %q ok=%v, want exactly [new0]", label, cols, ok)
		}
		cols, ok = st.Get([]byte("kept"), nil)
		if !ok || len(cols) != 2 || string(cols[0]) != "b0-new" || string(cols[1]) != "b1" {
			t.Fatalf("%s: kept key %q ok=%v, want [b0-new b1]", label, cols, ok)
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Config{Dir: dir, Workers: 1, MaintainEvery: -1, FlushInterval: time.Hour, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	check(r, "recovered")
}

// TestCasPutTreatsExpiredAsAbsent pins the CAS protocol over lazy expiry:
// reads report an expired key absent, so create-if-absent (expect 0) must
// succeed over it — not conflict forever on a version no read can observe —
// and a stale expect equal to the dead value's version must fail.
func TestCasPutTreatsExpiredAsAbsent(t *testing.T) {
	s, err := Open(Config{MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	deadVer := s.PutTTL(0, []byte("k"), []value.ColPut{{Col: 0, Data: []byte("old")}}, nowNanos()-1)

	// The dead version is not CASable — the key is "absent".
	if _, ok := s.CasPut(0, []byte("k"), deadVer, []value.ColPut{{Col: 0, Data: []byte("x")}}); ok {
		t.Fatal("CAS against a dead value's version succeeded")
	}
	// The conflict reports current version 0 (absent), so the documented
	// re-read-and-retry protocol converges on expect 0.
	cur, ok := s.CasPut(0, []byte("k"), 5, nil)
	if ok || cur != 0 {
		t.Fatalf("conflict over expired key reported version %d, want 0", cur)
	}
	ver, ok := s.CasPut(0, []byte("k"), 0, []value.ColPut{{Col: 0, Data: []byte("new")}})
	if !ok {
		t.Fatal("create-if-absent over an expired key failed")
	}
	if ver <= deadVer {
		t.Fatalf("new version %d not above the dead value's %d", ver, deadVer)
	}
	cols, ok := s.Get([]byte("k"), nil)
	if !ok || len(cols) != 1 || string(cols[0]) != "new" {
		t.Fatalf("after CAS: %q ok=%v", cols, ok)
	}
}

// TestTouchRecordStandsAlone pins Touch's column-complete logging: even if
// the log holding the key's original put vanishes wholesale (ROADMAP's
// vanished-log hole, reproduced by TestPartialColumnReplayHole for
// partial-column puts), the touch record alone rebuilds the full value —
// Touch must not widen that hole.
func TestTouchRecordStandsAlone(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 2, SyncWrites: true, FlushInterval: time.Hour, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	future := nowNanos() + uint64(time.Hour)
	s.Put(0, []byte("k"), []value.ColPut{
		{Col: 0, Data: []byte("c0")}, {Col: 1, Data: []byte("c1")},
	})
	if _, ok := s.Touch(1, []byte("k"), future); !ok { // different worker → different log
		t.Fatal("touch failed")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Worker 0's log (holding the original put) vanishes wholesale.
	files, err := wal.ListLogFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if f.Worker == 0 {
			if err := os.Remove(f.Path); err != nil {
				t.Fatal(err)
			}
		}
	}
	r, err := Open(Config{Dir: dir, Workers: 2, SyncWrites: true, FlushInterval: time.Hour, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cols, ok := r.Get([]byte("k"), nil)
	if !ok || len(cols) != 2 || string(cols[0]) != "c0" || string(cols[1]) != "c1" {
		t.Fatalf("touch record did not stand alone: %q ok=%v, want [c0 c1]", cols, ok)
	}
	v, _ := r.Tree().Get([]byte("k"))
	if v.ExpiresAt() != future {
		t.Fatalf("recovered expiry %d, want %d", v.ExpiresAt(), future)
	}
}
