// Package hashtable implements the concurrent hash table the paper built
// "in the Masstree framework" to price range-query support (§6.4): hash
// tables have O(1) average lookups but cannot scan in key order, and the
// paper's table reached 2.5x Masstree's throughput on an 8-byte-key get
// workload.
//
// The table is open-coded and sized at construction (the paper's table ran
// at 30% occupancy and inspected 1.1 entries per lookup; there is no
// resize). Buckets are prepend-only chains of immutable entries with
// atomically-swapped value pointers: gets are lock-free and write no shared
// memory, inserts CAS the bucket head, and removes tombstone the value.
package hashtable

import (
	"bytes"
	"hash/fnv"
	"sync/atomic"
	"unsafe"

	"repro/internal/value"
)

// Table is a fixed-capacity concurrent hash table.
type Table struct {
	buckets []atomic.Pointer[entry]
	mask    uint64
	count   atomic.Int64
}

// entry is one chain link. key and next are immutable after publication;
// val is swapped atomically and nil means removed.
type entry struct {
	key  []byte
	val  unsafe.Pointer
	next *entry
}

// New creates a table with at least the given number of buckets (rounded up
// to a power of two). Size for ~30% occupancy like the paper: buckets ≈
// 3x the expected key count.
func New(buckets int) *Table {
	n := 1
	for n < buckets {
		n <<= 1
	}
	return &Table{buckets: make([]atomic.Pointer[entry], n), mask: uint64(n - 1)}
}

func (t *Table) bucket(key []byte) *atomic.Pointer[entry] {
	h := fnv.New64a()
	h.Write(key)
	return &t.buckets[h.Sum64()&t.mask]
}

// Get returns the value for key; lock-free, no shared-memory writes.
func (t *Table) Get(key []byte) (*value.Value, bool) {
	for e := t.bucket(key).Load(); e != nil; e = e.next {
		if bytes.Equal(e.key, key) {
			v := (*value.Value)(atomic.LoadPointer(&e.val))
			if v == nil {
				return nil, false
			}
			return v, true
		}
	}
	return nil, false
}

// Put stores v for key, reporting whether a live value was replaced.
func (t *Table) Put(key []byte, v *value.Value) bool {
	b := t.bucket(key)
	for {
		head := b.Load()
		for e := head; e != nil; e = e.next {
			if bytes.Equal(e.key, key) {
				old := atomic.SwapPointer(&e.val, unsafe.Pointer(v))
				if old == nil {
					t.count.Add(1)
					return false
				}
				return true
			}
		}
		ne := &entry{key: append([]byte(nil), key...), val: unsafe.Pointer(v), next: head}
		if b.CompareAndSwap(head, ne) {
			t.count.Add(1)
			return false
		}
		// Lost the prepend race; rescan in case the winner inserted our key.
	}
}

// Remove tombstones key, reporting whether it was present.
func (t *Table) Remove(key []byte) bool {
	for e := t.bucket(key).Load(); e != nil; e = e.next {
		if bytes.Equal(e.key, key) {
			if atomic.SwapPointer(&e.val, nil) != nil {
				t.count.Add(-1)
				return true
			}
			return false
		}
	}
	return false
}

// Len returns the number of live keys.
func (t *Table) Len() int { return int(t.count.Load()) }

// AvgProbe reports the mean chain position of live entries (the paper's
// "1.1 entries inspected per lookup" statistic). For tests and stats.
func (t *Table) AvgProbe() float64 {
	entries, probes := 0, 0
	for i := range t.buckets {
		pos := 0
		for e := t.buckets[i].Load(); e != nil; e = e.next {
			pos++
			if atomic.LoadPointer(&e.val) != nil {
				entries++
				probes += pos
			}
		}
	}
	if entries == 0 {
		return 0
	}
	return float64(probes) / float64(entries)
}
