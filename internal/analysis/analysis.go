// Package analysis is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library's go/ast and go/types (the module is dependency-free by policy,
// so the x/tools driver and analysistest are reimplemented here in
// miniature).
//
// An Analyzer inspects typechecked packages and reports Diagnostics. The
// suite under internal/analysis/* encodes the repository's concurrency and
// allocation invariants — hand-over-hand border-lock discipline, epoch
// bracketing of tree reads, allocation-free hot paths, scratch-buffer
// aliasing rules, and atomic-field access discipline — so that `go run
// ./cmd/masstree-lint ./...` proves at build time what the runtime tests
// can only sample. See DESIGN.md for the invariant catalog and doc.go for
// the annotation conventions.
//
// Deliberate exceptions are annotated in the source as
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory; a bare allow is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one typechecked package: syntax plus type information, sharing
// one token.FileSet with every other package of the load.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Diagnostic is one finding, positioned inside a loaded file.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string

	// ProgramWide analyzers run once over the whole load (cross-package
	// facts, e.g. atomic-field discipline); others run per package.
	ProgramWide bool

	// Packages restricts a per-package analyzer to import paths with one of
	// these suffixes. Empty means every package. The test harness bypasses
	// the filter so fixtures need not mimic repository paths.
	Packages []string

	Run func(*Pass)
}

// AppliesTo reports whether the driver should run the analyzer on pkgPath.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, suf := range a.Packages {
		if pkgPath == suf || strings.HasSuffix(pkgPath, suf) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer execution. Per-package analyzers get Pkg and the
// full load in All (for cross-package fact lookup, e.g. annotations on a
// callee declared elsewhere); program-wide analyzers get only All.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	All      []*Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Fset returns the load's shared file set.
func (p *Pass) Fset() *token.FileSet {
	if p.Pkg != nil {
		return p.Pkg.Fset
	}
	if len(p.All) > 0 {
		return p.All[0].Fset
	}
	return nil
}

// Finding is a driver-level diagnostic: positioned, attributed to its
// analyzer, and carrying the suppression verdict.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string

	Suppressed bool   // an applicable //lint:allow covered it
	Reason     string // the allow's reason, when suppressed
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run executes the analyzers over the load and returns every finding,
// suppressed ones included, sorted by position. Callers decide whether
// suppressed findings count (the CLI driver drops them; the test harness
// drops them so fixtures can exercise the allow path).
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	allows := collectAllows(pkgs)

	emit := func(name string, diags []Diagnostic) {
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			f := Finding{Analyzer: name, Pos: pos, Message: d.Message}
			if reason, ok := allows.covers(name, pos); ok {
				f.Suppressed, f.Reason = true, reason
			}
			findings = append(findings, f)
		}
	}

	for _, a := range analyzers {
		if a.ProgramWide {
			pass := &Pass{Analyzer: a, All: pkgs}
			a.Run(pass)
			emit(a.Name, pass.diags)
			continue
		}
		for _, pkg := range pkgs {
			if !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, All: pkgs}
			a.Run(pass)
			emit(a.Name, pass.diags)
		}
	}

	// Malformed allow directives are findings too: a bare allow silently
	// suppressing nothing is exactly the rot this suite exists to prevent.
	findings = append(findings, allows.malformed...)

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings
}

// allowSet indexes //lint:allow directives by file and line.
type allowSet struct {
	byFileLine map[string]map[int]allowDirective
	malformed  []Finding
}

type allowDirective struct {
	analyzer string
	reason   string
}

// covers reports whether an allow for the analyzer sits on the finding's
// line or the line directly above it, in the same file.
func (s allowSet) covers(analyzer string, pos token.Position) (string, bool) {
	lines := s.byFileLine[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := lines[line]; ok && d.analyzer == analyzer {
			return d.reason, true
		}
	}
	return "", false
}

func collectAllows(pkgs []*Package) allowSet {
	s := allowSet{byFileLine: map[string]map[int]allowDirective{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:allow")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 {
						s.malformed = append(s.malformed, Finding{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
						})
						continue
					}
					lines := s.byFileLine[pos.Filename]
					if lines == nil {
						lines = map[int]allowDirective{}
						s.byFileLine[pos.Filename] = lines
					}
					lines[pos.Line] = allowDirective{
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
					}
				}
			}
		}
	}
	return s
}
