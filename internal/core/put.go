package core

import (
	"bytes"
	"unsafe"

	"repro/internal/value"
)

// Put stores v for key, returning the value it replaced, if any (§3: put).
// Replacing an existing value is a single atomic pointer write and forces no
// reader retries (§4.6.1); inserting a new key publishes it with one atomic
// permutation write (§4.6.2).
func (t *Tree) Put(key []byte, v *value.Value) (old *value.Value, replaced bool) {
	old, _, replaced = t.put(key, func(*value.Value) *value.Value { return v })
	return old, replaced
}

// Update performs an atomic read-modify-write: f runs under the owning
// border node's lock with the current value (nil if the key is absent) and
// must return the non-nil value to store. This is how multi-column puts are
// made atomic (§4.7) and how log replay applies updates in version order
// (§5). It returns the previous and the stored value.
func (t *Tree) Update(key []byte, f func(old *value.Value) *value.Value) (old, stored *value.Value) {
	old, stored, _ = t.put(key, f)
	return old, stored
}

// Apply is Update for conditional writes: f runs under the owning border
// node's lock with the current value (nil if the key is absent), but may
// return nil to decline, leaving the tree unchanged — no store, no insert,
// and no reader retries. This is the hook versioned compare-and-swap builds
// on (a CAS inspects old's version under the lock and declines on
// mismatch); the same contract applies to PutBatchInto's per-key callback,
// so conditional writes batch exactly like unconditional ones. It returns
// the value f observed and the value it stored (nil when it declined).
func (t *Tree) Apply(key []byte, f func(old *value.Value) *value.Value) (old, stored *value.Value) {
	old, stored, _ = t.put(key, f)
	return old, stored
}

// lockBorder descends from root to the border node responsible for slice
// and locks it. A split that committed between the descent and the lock may
// have shifted responsibility for the key to a right sibling, so the border
// links are chased hand-over-hand under lock. Returns nil — with everything
// unlocked and the root retry counted — when the node was deleted
// underneath us and the caller must restart from the tree root. This is the
// one copy of the writer-side locking protocol, shared by put, putRun, and
// remove.
//
//masstree:returns-locked
func (t *Tree) lockBorder(root *nodeHeader, slice uint64) *borderNode {
	n, _ := t.findBorder(root, slice)
	n.h.lock()
	if isDeleted(n.h.version.Load()) {
		n.h.unlock()
		t.stats.RootRetries.Add(1)
		return nil
	}
	for {
		next := n.next.Load()
		if next == nil || !next.keyGEqLowkey(slice) {
			return n
		}
		next.h.lock()
		n.h.unlock()
		n = next
		if isDeleted(n.h.version.Load()) {
			n.h.unlock()
			t.stats.RootRetries.Add(1)
			return nil
		}
	}
}

// put descends the trie to the border node responsible for key, locks it,
// and updates, inserts, creates a layer, or splits as needed.
func (t *Tree) put(key []byte, f func(*value.Value) *value.Value) (old, stored *value.Value, replaced bool) {
restart:
	root := t.rootHeader()
	k := key
	for {
		slice := keySlice(k)
		ord := keyOrd(k)
		n := t.lockBorder(root, slice)
		if n == nil {
			goto restart
		}
		perm := n.perm()
		rank, found := n.searchRank(perm, slice, ord)
		if found {
			slot := perm.slot(rank)
			switch kl := n.keylen[slot].Load(); kl {
			case klLayer:
				lvp := n.loadLV(slot)
				n.h.unlock()
				root = t.resolveLayer(n, slot, lvp)
				k = k[8:]
				continue
			case klSuffix:
				var suf []byte
				if sp := n.suffix[slot].Load(); sp != nil {
					suf = *sp
				}
				if bytes.Equal(suf, k[8:]) {
					old = (*value.Value)(n.loadLV(slot))
					if stored = f(old); stored != nil {
						n.storeLV(slot, unsafe.Pointer(stored))
					}
					n.h.unlock()
					return old, stored, true
				}
				// Conflicting suffix: push the old key one layer down
				// (§4.6.3), then continue inserting into the new layer.
				layer := t.makeLayer(n, slot, suf)
				n.h.unlock()
				root = layer
				k = k[8:]
				continue
			case klUnstable:
				// Unstable slots exist only while their writer holds the
				// node lock, which we hold.
				panic("core: unstable slot observed under lock")
			default:
				old = (*value.Value)(n.loadLV(slot))
				if stored = f(old); stored != nil {
					n.storeLV(slot, unsafe.Pointer(stored))
				}
				n.h.unlock()
				return old, stored, true
			}
		}
		// Key absent: insert it — unless f declines (conditional writes).
		stored = f(nil)
		if stored == nil {
			n.h.unlock()
			return nil, nil, false
		}
		if perm.count() < width {
			t.insertSlot(n, perm, rank, slice, k, stored)
			n.h.unlock()
		} else {
			t.splitInsert(n, rank, slice, k, stored) // unlocks
		}
		t.count.Add(1)
		return nil, stored, false
	}
}

// insertSlot writes a new key into a free slot of the locked border node n
// and publishes it with a single permutation store. Inserting into a slot
// that previously held a (since removed) key dirties the version so readers
// that located the old key there retry (§4.6.5).
//
//masstree:locked n
func (t *Tree) insertSlot(n *borderNode, perm permutation, rank int, slice uint64, k []byte, v *value.Value) {
	newPerm, slot := perm.insert(rank)
	if n.usedMask&(1<<uint(slot)) != 0 {
		n.h.markInserting()
		t.stats.SlotReuses.Add(1)
	}
	n.keyslice[slot].Store(slice)
	if len(k) <= 8 {
		n.keylen[slot].Store(uint32(len(k)))
		n.suffix[slot].Store(nil)
	} else {
		// Copy the suffix so the tree never retains a caller's buffer.
		suf := append([]byte(nil), k[8:]...)
		n.suffix[slot].Store(&suf)
		n.keylen[slot].Store(klSuffix)
	}
	n.storeLV(slot, unsafe.Pointer(v))
	n.usedMask |= 1 << uint(slot)
	n.permutation.Store(uint64(newPerm))
}

// makeLayer replaces the suffix key in the given slot of the locked border
// node n with a link to a freshly created trie layer containing that key's
// remainder (§4.6.3). The slot transitions value→UNSTABLE→LAYER so readers
// never confuse a value with a layer pointer. Since only one key is
// affected, neither the version nor the permutation changes.
//
//masstree:locked n
func (t *Tree) makeLayer(n *borderNode, slot int, suf []byte) *nodeHeader {
	oldv := n.loadLV(slot)
	n2 := newBorder(true, false)
	s2 := keySlice(suf)
	p2, sl2 := emptyPermutation().insert(0)
	n2.keyslice[sl2].Store(s2)
	if len(suf) <= 8 {
		n2.keylen[sl2].Store(uint32(len(suf)))
	} else {
		rest := suf[8:]
		n2.suffix[sl2].Store(&rest)
		n2.keylen[sl2].Store(klSuffix)
	}
	n2.storeLV(sl2, oldv)
	n2.usedMask |= 1 << uint(sl2)
	n2.permutation.Store(uint64(p2))

	n.keylen[slot].Store(klUnstable)
	n.storeLV(slot, unsafe.Pointer(&n2.h))
	n.keylen[slot].Store(klLayer)
	n.suffix[slot].Store(nil)
	t.stats.LayerCreations.Add(1)
	return &n2.h
}
