package wire

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTripRequests(t *testing.T, reqs []Request) []Request {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteRequests(w, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequests(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: []byte("k1"), Cols: []int{0, 3}},
		{Op: OpGet, Key: []byte("")},
		{Op: OpPut, Key: []byte("k2"), Puts: []ColData{{Col: 1, Data: []byte("data")}, {Col: 0, Data: nil}}},
		{Op: OpPutTTL, Key: []byte("kt"), TTL: 60, Puts: []ColData{{Col: 0, Data: []byte("exp")}}},
		{Op: OpTouch, Key: []byte("kt"), TTL: 120},
		{Op: OpRemove, Key: []byte("k3")},
		{Op: OpGetRange, Key: []byte("start"), N: 100, Cols: []int{2}},
		{Op: OpGetRange, Key: nil, N: 0},
	}
	got := roundTripRequests(t, reqs)
	if len(got) != len(reqs) {
		t.Fatalf("got %d requests", len(got))
	}
	for i := range reqs {
		if got[i].Op != reqs[i].Op || !bytes.Equal(got[i].Key, reqs[i].Key) ||
			got[i].N != reqs[i].N || !reflect.DeepEqual(got[i].Cols, reqs[i].Cols) ||
			got[i].TTL != reqs[i].TTL {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, got[i], reqs[i])
		}
		if len(got[i].Puts) != len(reqs[i].Puts) {
			t.Fatalf("request %d puts mismatch", i)
		}
		for j := range reqs[i].Puts {
			if got[i].Puts[j].Col != reqs[i].Puts[j].Col || !bytes.Equal(got[i].Puts[j].Data, reqs[i].Puts[j].Data) {
				t.Fatalf("request %d put %d mismatch", i, j)
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, Version: 1 << 50},
		{Status: StatusNotFound},
		{Status: StatusOK, Cols: [][]byte{[]byte("a"), nil, []byte("ccc")}},
		{Status: StatusOK, Pairs: []Pair{
			{Key: []byte("k1"), Cols: [][]byte{[]byte("v1")}},
			{Key: []byte(""), Cols: nil},
		}},
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteResponses(w, resps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponses(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(resps) {
		t.Fatalf("got %d responses", len(got))
	}
	if got[0].Version != resps[0].Version || got[0].Status != StatusOK {
		t.Fatal("response 0 mismatch")
	}
	if got[1].Status != StatusNotFound {
		t.Fatal("response 1 mismatch")
	}
	if len(got[2].Cols) != 3 || string(got[2].Cols[2]) != "ccc" {
		t.Fatalf("response 2 mismatch: %+v", got[2])
	}
	if len(got[3].Pairs) != 2 || string(got[3].Pairs[0].Key) != "k1" || string(got[3].Pairs[0].Cols[0]) != "v1" {
		t.Fatalf("response 3 mismatch: %+v", got[3])
	}
}

func TestRequestQuick(t *testing.T) {
	f := func(key, data []byte, col uint8, n uint16) bool {
		reqs := []Request{
			{Op: OpPut, Key: key, Puts: []ColData{{Col: int(col), Data: data}}},
			{Op: OpGetRange, Key: key, N: int(n)},
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteRequests(w, reqs); err != nil {
			return len(key) > 0xffff // only oversized keys may fail
		}
		got, err := ReadRequests(bufio.NewReader(&buf))
		if err != nil || len(got) != 2 {
			return false
		}
		return bytes.Equal(got[0].Key, key) && got[0].Puts[0].Col == int(col) &&
			bytes.Equal(got[0].Puts[0].Data, data) && got[1].N == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedFrameErrors(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteRequests(w, []Request{{Op: OpGet, Key: []byte("k")}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := ReadRequests(bufio.NewReader(bytes.NewReader(full[:cut])))
		if err == nil {
			t.Fatalf("cut %d: expected error", cut)
		}
	}
}

func TestUnknownOpcodeErrors(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	WriteRequests(w, []Request{{Op: OpGet, Key: []byte("k")}})
	b := buf.Bytes()
	b[8] = 99 // clobber the opcode (4B frame len + 4B count)
	if _, err := ReadRequests(bufio.NewReader(bytes.NewReader(b))); err == nil {
		t.Fatal("expected error for unknown opcode")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var hdr [4]byte
	hdr[3] = 0xff // huge length
	_, err := ReadRequests(bufio.NewReader(bytes.NewReader(hdr[:])))
	if err == nil {
		t.Fatal("expected error for oversized frame")
	}
}
