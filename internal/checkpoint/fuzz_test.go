package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/value"
	"repro/internal/vfs"
)

// FuzzCheckpointLoad feeds arbitrary bytes as a checkpoint directory's
// manifest and part files (plus a lower-timestamped legacy file), mirroring
// the wire-codec fuzzers: corrupt or truncated inputs must surface as
// ErrCorrupt-driven fallback (LoadLatestFS returns an older candidate or
// ErrNone), never a panic, a huge allocation from a lying count field, or a
// half-applied checkpoint. Corpora are seeded from the writer so the
// fuzzer starts on the happy path and mutates outward.
func FuzzCheckpointLoad(f *testing.F) {
	const dir = "/fz"
	seed := func(nEntries, parts int, startTS uint64) ([]byte, []byte, []byte) {
		m := vfs.NewMemFS()
		if err := m.MkdirAll(dir, 0o755); err != nil {
			f.Fatal(err)
		}
		es := entries(nEntries)
		if _, err := WriteParts(m, dir, startTS, parts, func(k int, emit func(Entry) error) error {
			lo, hi := k*len(es)/parts, (k+1)*len(es)/parts
			for _, e := range es[lo:hi] {
				if err := emit(e); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			f.Fatal(err)
		}
		mf, _ := m.ReadFile(filepath.Join(dir, ManifestName(startTS)))
		p0, _ := m.ReadFile(filepath.Join(dir, PartName(startTS, 0)))
		var p1 []byte
		if parts > 1 {
			p1, _ = m.ReadFile(filepath.Join(dir, PartName(startTS, 1)))
		}
		return mf, p0, p1
	}
	add := func(mf, p0, p1 []byte) { f.Add(mf, p0, p1) }
	add(seed(0, 1, 7))
	add(seed(17, 2, 7))
	add(seed(100, 2, 7))
	mf, p0, p1 := seed(5, 2, 7)
	f.Add(mf[:len(mf)-2], p0, p1)                  // torn manifest
	f.Add(mf, p0[:len(p0)/2], p1)                  // torn part
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, p0, p1)  // garbage manifest
	f.Add(mf, []byte("MTCKPT1\n\x00\x00\x00"), p1) // short part body

	f.Fuzz(func(t *testing.T, mf, p0, p1 []byte) {
		m := vfs.NewMemFS()
		if err := m.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		write := func(name string, b []byte) {
			fh, err := m.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			fh.Write(b)
			fh.Close()
		}
		// The fuzzed checkpoint at ts=7, an intact legacy fallback at ts=3.
		write(ManifestName(7), mf)
		write(PartName(7, 0), p0)
		write(PartName(7, 1), p1)
		legacy := entries(3)
		i := 0
		if _, _, err := WriteFS(m, dir, 3, func() (Entry, bool) {
			if i >= len(legacy) {
				return Entry{}, false
			}
			e := legacy[i]
			i++
			return e, true
		}); err != nil {
			t.Fatal(err)
		}

		applied := 0
		ts, err := LoadLatestFS(m, dir, func(e Entry) {
			applied++
			_ = e.Value.Version()
			for c := 0; c < e.Value.NumCols(); c++ {
				_ = e.Value.Col(c)
			}
		})
		switch {
		case err == nil:
			if ts != 7 && ts != 3 {
				t.Fatalf("loaded checkpoint with unexpected ts %d", ts)
			}
			if ts == 3 && applied != len(legacy) {
				t.Fatalf("legacy fallback applied %d entries, want %d", applied, len(legacy))
			}
		case errors.Is(err, ErrNone):
			// Possible only if the fuzz input also broke nothing... the
			// legacy checkpoint is always intact, so ErrNone is a bug.
			t.Fatalf("ErrNone despite an intact legacy checkpoint")
		default:
			t.Fatalf("unexpected error class: %v", err)
		}

		// The standalone body loader must be all-or-nothing too.
		bodyApplied := 0
		if _, lerr := LoadFS(m, filepath.Join(dir, PartName(7, 0)), func(Entry) { bodyApplied++ }); lerr != nil {
			if !errors.Is(lerr, ErrCorrupt) {
				t.Fatalf("LoadFS error class: %v", lerr)
			}
			if bodyApplied != 0 {
				t.Fatalf("LoadFS half-applied %d entries before failing", bodyApplied)
			}
		}
	})
}

// FuzzParseCkptFile fuzzes the body parser directly (no filesystem): never
// panic, never allocate absurdly from a lying count, errors are ErrCorrupt.
func FuzzParseCkptFile(f *testing.F) {
	var bodies [][]byte
	m := vfs.NewMemFS()
	m.MkdirAll("/s", 0o755)
	for _, n := range []int{0, 1, 64} {
		es := entries(n)
		i := 0
		if _, _, err := WriteFS(m, "/s", uint64(n), func() (Entry, bool) {
			if i >= len(es) {
				return Entry{}, false
			}
			e := es[i]
			i++
			return e, true
		}); err != nil {
			f.Fatal(err)
		}
		b, _ := m.ReadFile(filepath.Join("/s", FileName(uint64(n))))
		bodies = append(bodies, b)
	}
	for _, b := range bodies {
		f.Add(b)
		f.Add(b[:len(b)-1])
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		ts, es, err := parseCkptFile(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error class: %v", err)
			}
			return
		}
		_ = ts
		for _, e := range es {
			if e.Value == nil {
				t.Fatal("nil value in parsed entry")
			}
			_ = value.Equal(e.Value, e.Value)
		}
	})
}
