// Package bench regenerates every table and figure of the paper's
// evaluation (§6 tree evaluation, §7 system comparison, §5 checkpointing) at
// configurable scale. Each experiment returns a Table whose rows mirror the
// paper's bars, series, or table cells; committed result snapshots live in
// the BENCH_*.json files at the repository root (index in DESIGN.md).
//
// Absolute numbers differ from the paper's 16-core 2009-era testbed; the
// experiments are designed so the *shape* — who wins, by roughly what
// factor, where crossovers fall — is the reproducible output.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Scale sizes the experiments. The paper's counterparts are 140M keys and
// 16 cores; defaults here are laptop-sized.
type Scale struct {
	Keys    int // dataset size per experiment
	Ops     int // total measured operations
	Workers int // concurrent load generators (defaults to GOMAXPROCS)
	Batch   int // ops per client message (system benchmarks)
}

// DefaultScale returns laptop-sized parameters.
func DefaultScale() Scale {
	return Scale{Keys: 200_000, Ops: 400_000, Workers: runtime.GOMAXPROCS(0), Batch: 64}
}

// SmokeScale is tiny, for tests.
func SmokeScale() Scale {
	return Scale{Keys: 3_000, Ops: 6_000, Workers: 2, Batch: 16}
}

func (s Scale) withDefaults() Scale {
	d := DefaultScale()
	if s.Keys <= 0 {
		s.Keys = d.Keys
	}
	if s.Ops <= 0 {
		s.Ops = d.Ops
	}
	if s.Workers <= 0 {
		s.Workers = d.Workers
	}
	if s.Batch <= 0 {
		s.Batch = d.Batch
	}
	return s
}

// Table is one experiment's result in the paper's layout.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// mops formats a throughput as millions of requests per second.
func mops(opsPerSec float64) string {
	return fmt.Sprintf("%.3f", opsPerSec/1e6)
}

// ratio formats a relative throughput.
func ratio(x, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", x/base)
}

// measure runs workers concurrent goroutines, each executing fn(worker, i)
// for i in [0, perWorker), and returns aggregate operations per second.
func measure(workers, perWorker int, fn func(worker, i int)) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	el := time.Since(start).Seconds()
	if el <= 0 {
		el = 1e-9
	}
	return float64(workers*perWorker) / el
}

// Registry maps experiment ids to their generators.
var Registry = map[string]func(Scale) *Table{
	"fig8":    Fig8,
	"fig9":    Fig9,
	"fig10":   Fig10,
	"fig11":   Fig11,
	"fig12":   Fig12,
	"fig13":   Fig13,
	"sec63":   Sec63,
	"sec64":   Sec64,
	"ckpt":    Ckpt,
	"retry":   Retry,
	"shape":   Shape,
	"cache":   Cache,
	"herd":    Herd,
	"cluster": Cluster,

	"replaychain": Replaychain,
	"obs":         Obs,
}

// IDs lists experiment ids in presentation order.
var IDs = []string{"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "sec63", "sec64", "ckpt", "retry", "shape", "cache", "herd", "cluster", "replaychain", "obs"}

// All runs every experiment.
func All(sc Scale) []*Table {
	out := make([]*Table, 0, len(IDs))
	for _, id := range IDs {
		out = append(out, Registry[id](sc))
	}
	return out
}
