// Package workload generates the key distributions and request streams used
// by the paper's evaluation (§6.1, §6.6, §7):
//
//   - "1-to-10-byte decimal" keys: decimal string representations of uniform
//     random numbers in [0, 2^31), the main tree workload; 80% of keys are
//     9–10 bytes long, which forces Masstree to create layer-1 trees.
//   - fixed 8-byte decimal keys (variable-length-key cost, §6.4),
//   - shared-prefix keys where only the final 8 bytes vary (Figure 9),
//   - 8-byte random alphabetical keys (hash-table comparison, §6.4),
//   - zipfian-popularity record choosers for MYCSB (§7),
//   - the Hua–Lee single-parameter skew model for partitioned stores (§6.6).
//
// All generators are deterministic given their seed, so experiments are
// reproducible and multiple workers can generate disjoint streams.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
)

// KeyGen produces a stream of keys. Implementations are not safe for
// concurrent use; give each worker its own generator.
type KeyGen interface {
	// Next returns the next key. The returned slice is freshly allocated
	// and may be retained by the caller.
	Next() []byte
}

// funcGen adapts a closure to KeyGen.
type funcGen func() []byte

func (f funcGen) Next() []byte { return f() }

// Decimal returns the paper's "1-to-10-byte decimal" generator: the decimal
// representation of uniform random numbers in [0, 2^31).
func Decimal(seed int64) KeyGen {
	rng := rand.New(rand.NewSource(seed))
	return funcGen(func() []byte {
		return strconv.AppendInt(nil, rng.Int63n(1<<31), 10)
	})
}

// DecimalN is Decimal restricted to n distinct numbers, for workloads that
// want a bounded key space (e.g. pre-population plus hits).
func DecimalN(seed int64, n int64) KeyGen {
	rng := rand.New(rand.NewSource(seed))
	return funcGen(func() []byte {
		return strconv.AppendInt(nil, rng.Int63n(n), 10)
	})
}

// Fixed8Decimal returns 8-byte decimal keys: zero-padded numbers below 10^8
// (§6.4's fixed-size-key comparison).
func Fixed8Decimal(seed int64) KeyGen {
	rng := rand.New(rand.NewSource(seed))
	return funcGen(func() []byte {
		return []byte(fmt.Sprintf("%08d", rng.Int63n(1e8)))
	})
}

// Prefixed returns keys of exactly length bytes where all keys share a
// constant prefix and only the final 8 bytes vary uniformly (Figure 9).
// length must be at least 8.
func Prefixed(seed int64, length int) KeyGen {
	if length < 8 {
		panic("workload: prefixed key length must be >= 8")
	}
	prefix := make([]byte, length-8)
	for i := range prefix {
		prefix[i] = 'P'
	}
	rng := rand.New(rand.NewSource(seed))
	return funcGen(func() []byte {
		k := make([]byte, 0, length)
		k = append(k, prefix...)
		return append(k, []byte(fmt.Sprintf("%08d", rng.Int63n(1e8)))...)
	})
}

// Alpha8 returns 8-byte random alphabetical keys (§6.4: digit-only keys
// caused hash collisions, and the paper wanted the test to favor the hash
// table).
func Alpha8(seed int64) KeyGen {
	rng := rand.New(rand.NewSource(seed))
	return funcGen(func() []byte {
		k := make([]byte, 8)
		for i := range k {
			k[i] = byte('a' + rng.Intn(26))
		}
		return k
	})
}

// Sequential returns keys "prefix%08d" in increasing order, for sequential-
// insert workloads (§4.3's optimization).
func Sequential(prefix string) KeyGen {
	i := int64(0)
	return funcGen(func() []byte {
		k := []byte(fmt.Sprintf("%s%08d", prefix, i))
		i++
		return k
	})
}

// Keys materializes n keys from g.
func Keys(g KeyGen, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// UniqueKeys materializes n distinct keys from g (discarding duplicates),
// useful for pre-population when the exact cardinality matters.
func UniqueKeys(g KeyGen, n int) [][]byte {
	seen := make(map[string]struct{}, n)
	out := make([][]byte, 0, n)
	for len(out) < n {
		k := g.Next()
		if _, dup := seen[string(k)]; dup {
			continue
		}
		seen[string(k)] = struct{}{}
		out = append(out, k)
	}
	return out
}
