package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/value"
)

// randomKey generators exercising the distributions the tree must handle:
// short binary keys, decimal keys, shared-prefix keys, and long binary keys
// spanning many trie layers.
func keyGenerators(rng *rand.Rand) []func() []byte {
	return []func() []byte{
		func() []byte { // short, dense binary (stresses slice groups)
			n := rng.Intn(4)
			k := make([]byte, n)
			for i := range k {
				k[i] = byte(rng.Intn(3))
			}
			return k
		},
		func() []byte { // 1-to-10-byte decimal (the paper's main workload)
			return []byte(fmt.Sprintf("%d", rng.Int63n(1<<31)))
		},
		func() []byte { // shared 16-byte prefix + varying tail
			return []byte(fmt.Sprintf("comm-prefix-0016%06d", rng.Intn(3000)))
		},
		func() []byte { // long binary keys across layers
			n := 8 + rng.Intn(40)
			k := make([]byte, n)
			for i := range k {
				k[i] = byte(rng.Intn(5) * 50)
			}
			return k
		},
	}
}

// TestModelRandomOps runs randomized put/get/remove/scan against a map and
// sorted-slice reference model, across several seeds and key distributions.
func TestModelRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			gens := keyGenerators(rng)
			tr := New()
			model := map[string]string{}
			const ops = 8000
			for i := 0; i < ops; i++ {
				gen := gens[rng.Intn(len(gens))]
				k := gen()
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // put
					v := fmt.Sprintf("v%d", i)
					_, replaced := tr.Put(k, value.New([]byte(v)))
					_, existed := model[string(k)]
					if replaced != existed {
						t.Fatalf("op %d: Put(%q) replaced=%v, model existed=%v", i, k, replaced, existed)
					}
					model[string(k)] = v
				case 5, 6, 7: // get
					v, ok := tr.Get(k)
					want, wantOK := model[string(k)]
					if ok != wantOK || (ok && string(v.Bytes()) != want) {
						t.Fatalf("op %d: Get(%q) = %v,%v want %q,%v", i, k, v, ok, want, wantOK)
					}
				case 8: // remove
					old, ok := tr.Remove(k)
					want, wantOK := model[string(k)]
					if ok != wantOK || (ok && string(old.Bytes()) != want) {
						t.Fatalf("op %d: Remove(%q) = %v,%v want %q,%v", i, k, old, ok, want, wantOK)
					}
					delete(model, string(k))
				case 9: // occasional maintenance
					tr.Maintain()
				}
				if tr.Len() != len(model) {
					t.Fatalf("op %d: Len=%d model=%d", i, tr.Len(), len(model))
				}
			}
			checkFullScan(t, tr, model)
			checkRangeQueries(t, rng, tr, model)

			// Drain the tree and verify emptiness.
			for k := range model {
				if _, ok := tr.Remove([]byte(k)); !ok {
					t.Fatalf("drain: Remove(%q) failed", k)
				}
			}
			tr.Maintain()
			if tr.Len() != 0 {
				t.Fatalf("Len = %d after drain", tr.Len())
			}
			checkFullScan(t, tr, map[string]string{})
		})
	}
}

func sortedKeys(model map[string]string) []string {
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func checkFullScan(t *testing.T, tr *Tree, model map[string]string) {
	t.Helper()
	want := sortedKeys(model)
	var got []string
	tr.Scan(nil, func(k []byte, v *value.Value) bool {
		got = append(got, string(k))
		if model[string(k)] != string(v.Bytes()) {
			t.Fatalf("scan value mismatch for %q: %q vs %q", k, v.Bytes(), model[string(k)])
		}
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan order mismatch at %d: %q vs %q", i, got[i], want[i])
		}
	}
}

func checkRangeQueries(t *testing.T, rng *rand.Rand, tr *Tree, model map[string]string) {
	t.Helper()
	keys := sortedKeys(model)
	gens := keyGenerators(rng)
	for trial := 0; trial < 30; trial++ {
		var start []byte
		if trial%2 == 0 && len(keys) > 0 {
			start = []byte(keys[rng.Intn(len(keys))])
		} else {
			start = gens[rng.Intn(len(gens))]()
		}
		limit := 1 + rng.Intn(20)
		got := tr.GetRange(start, limit)
		// Reference: first `limit` model keys >= start.
		idx := sort.SearchStrings(keys, string(start))
		want := keys[idx:]
		if len(want) > limit {
			want = want[:limit]
		}
		if len(got) != len(want) {
			t.Fatalf("GetRange(%q,%d) returned %d pairs, want %d", start, limit, len(got), len(want))
		}
		for i := range got {
			if string(got[i].Key) != want[i] {
				t.Fatalf("GetRange(%q,%d)[%d] = %q, want %q", start, limit, i, got[i].Key, want[i])
			}
			if !bytes.Equal(got[i].Value.Bytes(), []byte(model[want[i]])) {
				t.Fatalf("GetRange value mismatch for %q", want[i])
			}
		}
	}
}

// TestModelDecimalHeavy mirrors the paper's put benchmark: many decimal keys
// with ~10% collisions (updates), then full verification.
func TestModelDecimalHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New()
	model := map[string]string{}
	const n = 20000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%d", rng.Int63n(60000))
		v := fmt.Sprintf("v%d", i)
		tr.Put([]byte(k), value.New([]byte(v)))
		model[k] = v
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", tr.Len(), len(model))
	}
	for k, v := range model {
		got, ok := tr.Get([]byte(k))
		if !ok || string(got.Bytes()) != v {
			t.Fatalf("Get(%q) = %v,%v want %q", k, got, ok, v)
		}
	}
	checkFullScan(t, tr, model)
}
