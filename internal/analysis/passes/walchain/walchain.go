// Package walchain verifies the WAL version-chain discipline of the
// kvstore's write paths: the version draw (nextVersion), the prev-link read,
// and the record append must share one serialized window. The chain
// invariant — every linked record's prev names exactly the version it
// replaced — only holds if prev is read in the same border-lock critical
// section that draws the version (the func literal passed to a tree write
// method: Update, Apply, PutBatchInto), and if the append happens before the
// worker lock opens the draw-to-append window to the next writer. A prev
// read outside that window is a TOCTOU: a racing writer slips between the
// read and the draw and the logged chain skips a version, which replay then
// counts as broken.
//
// Concretely, for every call to Writer.AppendPut / AppendPutTTL /
// AppendPutBatch in the kvstore:
//
//   - a lockWorker call must precede the append in the same function (the
//     worker lock spans draw to append);
//   - the prev argument must be the literal 0 (a chain anchor: inserts,
//     cross-log handoffs, Touch) or a value assigned inside a tree-write
//     func literal that calls nextVersion;
//   - the version argument must likewise be assigned inside such a literal;
//   - and every nextVersion call must itself sit inside a func literal
//     passed to a tree write method — versions drawn outside the border
//     lock are unordered against the value they stamp.
//
// The analysis is syntactic and per-function; values laundered through
// helper calls are flagged conservatively (//lint:allow walchain with a
// reason for deliberate exceptions).
package walchain

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the walchain pass.
var Analyzer = &analysis.Analyzer{
	Name:     "walchain",
	Doc:      "check that WAL prev links and versions are drawn and appended inside one border-lock critical section",
	Packages: []string{"internal/kvstore"},
	Run:      run,
}

// treeWrites are the tree methods whose func-literal argument runs under
// the border lock of the key it mutates.
var treeWrites = map[string]bool{"Update": true, "Apply": true, "PutBatchInto": true}

// chainAppends maps the checked Writer methods to the argument positions of
// (version, prev).
var chainAppends = map[string][2]int{
	"AppendPut":      {0, 1},
	"AppendPutTTL":   {0, 1},
	"AppendPutBatch": {2, 3},
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Critical sections: func literals passed to tree write methods. A
	// variable assigned inside one that draws a version is "drawn under the
	// border lock" — including scratch-rooted stores like sc.prevs[i].
	crit := map[*types.Var]bool{}
	var sections [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !treeWrites[sel.Sel.Name] {
			return true
		}
		for _, arg := range call.Args {
			fl, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			sections = append(sections, [2]token.Pos{fl.Pos(), fl.End()})
			if !callsNextVersion(fl) {
				continue
			}
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if a, ok := m.(*ast.AssignStmt); ok {
					for _, lhs := range a.Lhs {
						if v := rootVar(info, lhs); v != nil {
							crit[v] = true
						}
					}
				}
				return true
			})
		}
		return true
	})

	// The worker lock's position: the draw-to-append window opens here.
	lockPos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lockPos.IsValid() {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "lockWorker" {
				lockPos = call.Pos()
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Version draws outside any tree-write literal are unordered
		// against the value they stamp.
		if sel.Sel.Name == "nextVersion" && !inside(sections, call.Pos()) {
			pass.Reportf(call.Pos(), "nextVersion outside a tree-write critical section: the version draw must run inside the func literal passed to Update/Apply/PutBatchInto")
			return true
		}
		argIdx, checked := chainAppends[sel.Sel.Name]
		if !checked || !isWriter(info, sel.X) || len(call.Args) <= argIdx[1] {
			return true
		}
		if !lockPos.IsValid() || call.Pos() < lockPos {
			pass.Reportf(call.Pos(), "%s without the worker lock: no lockWorker call precedes the append, so the draw-to-append window is not serialized", sel.Sel.Name)
		}
		verArg, prevArg := call.Args[argIdx[0]], call.Args[argIdx[1]]
		if v := rootVar(info, verArg); v == nil || !crit[v] {
			pass.Reportf(verArg.Pos(), "version argument %s of %s is not assigned in the border-lock critical section that draws it", types.ExprString(verArg), sel.Sel.Name)
		}
		if lit, ok := ast.Unparen(prevArg).(*ast.BasicLit); ok {
			if lit.Value != "0" {
				pass.Reportf(prevArg.Pos(), "constant prev %s in %s: only 0 (a chain anchor) may be a constant link", lit.Value, sel.Sel.Name)
			}
			return true
		}
		if v := rootVar(info, prevArg); v == nil || !crit[v] {
			pass.Reportf(prevArg.Pos(), "prev link %s of %s is not read in the border-lock critical section that draws the version", types.ExprString(prevArg), sel.Sel.Name)
		}
		return true
	})
}

// callsNextVersion reports whether the literal's body draws a version.
func callsNextVersion(fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "nextVersion" {
				found = true
			}
		}
		return !found
	})
	return found
}

// inside reports whether pos falls in any of the ranges.
func inside(ranges [][2]token.Pos, pos token.Pos) bool {
	for _, r := range ranges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

// rootVar resolves an expression to the variable at its root: prev -> prev,
// sc.prevs[i] -> sc, (sc.vers) -> sc. Non-variable roots return nil.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// isWriter reports whether the expression's type is (a pointer to) a named
// type called Writer — the WAL writer.
func isWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Writer"
}
