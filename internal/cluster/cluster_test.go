package cluster

import (
	"fmt"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/server"
	"repro/internal/wire"
)

// testNode is one live in-process server for cluster tests.
type testNode struct {
	store *kvstore.Store
	srv   *server.Server
	addr  string
}

// startNodes brings up n independent in-memory stores, each behind its own
// TCP server.
func startNodes(t *testing.T, n int) []testNode {
	t.Helper()
	nodes := make([]testNode, n)
	for i := range nodes {
		store, err := kvstore.Open(kvstore.Config{MaintainEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(store, 2)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		nodes[i] = testNode{store: store, srv: srv, addr: srv.Addr().String()}
		t.Cleanup(func() {
			srv.Close()
			store.Close()
		})
	}
	return nodes
}

func addrsOf(nodes []testNode) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.addr
	}
	return out
}

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// fastConfig keeps failure-detection latencies test-sized.
func fastConfig(addrs []string) Config {
	return Config{
		Addrs:         addrs,
		DialTimeout:   500 * time.Millisecond,
		OpTimeout:     time.Second,
		NodeFailures:  2,
		DownFor:       100 * time.Millisecond,
		ProbeInterval: 20 * time.Millisecond,
	}
}

// TestClusterSingleNodeEquivalence mirrors TestInteropV1V2Identical one
// level up: a Cluster over a single node must produce responses identical
// to a plain client.Conn for every operation — same statuses, versions,
// columns, and pairs, for keyed ops, TTL ops, CAS conflicts, removes,
// ranges, and stats. The cluster layer must be invisible at N=1.
func TestClusterSingleNodeEquivalence(t *testing.T) {
	// Two identically-seeded single-node "clusters": one reached through a
	// plain Conn, one through Cluster.
	nodes := startNodes(t, 2)
	conn, err := client.DialConn(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := newCluster(t, fastConfig([]string{nodes[1].addr}))

	batches := [][]wire.Request{
		{
			{Op: wire.OpPut, Key: []byte("a"), Puts: []wire.ColData{{Col: 0, Data: []byte("1")}, {Col: 1, Data: []byte("x")}}},
			{Op: wire.OpPut, Key: []byte("b"), Puts: []wire.ColData{{Col: 0, Data: []byte("2")}}},
			{Op: wire.OpPut, Key: []byte("c"), Puts: []wire.ColData{{Col: 0, Data: []byte("3")}}},
		},
		{
			{Op: wire.OpGet, Key: []byte("a")},
			{Op: wire.OpGet, Key: []byte("b"), Cols: []int{0}},
			{Op: wire.OpGet, Key: []byte("nope")},
			{Op: wire.OpCas, Key: []byte("fresh"), ExpectVersion: 0, Puts: []wire.ColData{{Col: 0, Data: []byte("created")}}},
			{Op: wire.OpCas, Key: []byte("fresh"), ExpectVersion: 0, Puts: []wire.ColData{{Col: 0, Data: []byte("stale")}}},
			{Op: wire.OpPutTTL, Key: []byte("t"), Puts: []wire.ColData{{Col: 0, Data: []byte("ttl")}}, TTL: 3600},
			{Op: wire.OpTouch, Key: []byte("t"), TTL: 7200},
			{Op: wire.OpTouch, Key: []byte("absent"), TTL: 60},
			{Op: wire.OpRemove, Key: []byte("c")},
			{Op: wire.OpRemove, Key: []byte("never")},
			{Op: wire.OpGetRange, Key: nil, N: 10},
		},
	}
	for bi, reqs := range batches {
		r1, err := conn.Do(reqs)
		if err != nil {
			t.Fatalf("batch %d via conn: %v", bi, err)
		}
		r2, err := cl.Do(reqs)
		if err != nil {
			t.Fatalf("batch %d via cluster: %v", bi, err)
		}
		if !reflect.DeepEqual(normalize(r1), normalize(r2)) {
			t.Fatalf("batch %d diverged:\nconn:    %+v\ncluster: %+v", bi, r1, r2)
		}
	}

	// The wrapper surface must agree too, not just raw Do.
	v1, err1 := conn.PutSimple([]byte("w"), []byte("val"))
	v2, err2 := cl.PutSimple([]byte("w"), []byte("val"))
	if err1 != nil || err2 != nil || v1 != v2 {
		t.Fatalf("PutSimple diverged: (%d,%v) vs (%d,%v)", v1, err1, v2, err2)
	}
	g1, gv1, ok1, _ := conn.Get([]byte("w"), nil)
	g2, gv2, ok2, _ := cl.Get([]byte("w"), nil)
	if !reflect.DeepEqual(g1, g2) || gv1 != gv2 || ok1 != ok2 {
		t.Fatalf("Get diverged: (%q,%d,%v) vs (%q,%d,%v)", g1, gv1, ok1, g2, gv2, ok2)
	}
	c1, cok1, _ := conn.CasPut([]byte("w"), v1, []wire.ColData{{Col: 0, Data: []byte("v2")}})
	c2, cok2, _ := cl.CasPut([]byte("w"), v2, []wire.ColData{{Col: 0, Data: []byte("v2")}})
	if c1 != c2 || cok1 != cok2 {
		t.Fatalf("CasPut diverged: (%d,%v) vs (%d,%v)", c1, cok1, c2, cok2)
	}
	rm1, _ := conn.Remove([]byte("w"))
	rm2, _ := cl.Remove([]byte("w"))
	if rm1 != rm2 {
		t.Fatalf("Remove diverged: %v vs %v", rm1, rm2)
	}
}

// normalize maps empty and nil slices together so DeepEqual compares
// contents, not alloc-path artifacts (the cluster clones, Conn.Do clones —
// both own their memory, but empty-vs-nil may differ).
func normalize(in []wire.Response) []wire.Response {
	out := make([]wire.Response, len(in))
	for i, r := range in {
		if len(r.Cols) == 0 {
			r.Cols = nil
		}
		if len(r.Pairs) == 0 {
			r.Pairs = nil
		}
		for j := range r.Cols {
			if len(r.Cols[j]) == 0 {
				r.Cols[j] = nil
			}
		}
		out[i] = r
	}
	return out
}

// TestClusterBatchSplitMerge drives GetBatch/PutBatch across a 3-node
// cluster: writes must land on each key's ring owner (verified against the
// stores directly), reads must merge back into request order, and the
// split_batches counter must move.
func TestClusterBatchSplitMerge(t *testing.T) {
	nodes := startNodes(t, 3)
	cl := newCluster(t, fastConfig(addrsOf(nodes)))

	const n = 300
	keys := make([][]byte, n)
	puts := make([][]wire.ColData, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
		puts[i] = []wire.ColData{{Col: 0, Data: []byte(fmt.Sprintf("val-%04d", i))}}
	}
	vers, err := cl.PutBatch(keys, puts)
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != n {
		t.Fatalf("PutBatch returned %d versions for %d keys", len(vers), n)
	}
	for i, v := range vers {
		if v == 0 {
			t.Fatalf("key %d got version 0", i)
		}
	}

	// Each key must be resident on exactly its ring owner.
	owners := make([]int, n)
	for i, k := range keys {
		owners[i] = cl.Owner(k)
	}
	perNode := make([]int, 3)
	for i, k := range keys {
		for ni, node := range nodes {
			sess := node.store.Session(0)
			_, ok := sess.GetValue(k)
			sess.Close()
			if ok && ni != owners[i] {
				t.Fatalf("key %q resident on node %d, ring owner is %d", k, ni, owners[i])
			}
			if !ok && ni == owners[i] {
				t.Fatalf("key %q missing from its owner node %d", k, owners[i])
			}
			if ok {
				perNode[ni]++
			}
		}
	}
	for ni, c := range perNode {
		if c == 0 {
			t.Fatalf("node %d owns no keys of %d — ring distribution collapsed: %v", ni, n, perNode)
		}
	}

	// GetBatch must merge replies back into request order.
	resps, err := cl.GetBatch(keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Status != wire.StatusOK {
			t.Fatalf("key %d status %d", i, r.Status)
		}
		want := fmt.Sprintf("val-%04d", i)
		if string(r.Cols[0]) != want {
			t.Fatalf("key %d: got %q want %q — batch merge broke request order", i, r.Cols[0], want)
		}
		if r.Version != vers[i] {
			t.Fatalf("key %d: version %d, put acked %d", i, r.Version, vers[i])
		}
	}

	if st := cl.ClusterStats(); st.SplitBatches < 2 {
		t.Fatalf("split_batches = %d after two cross-shard batches", st.SplitBatches)
	}
}

// TestClusterStatsAggregate checks StatsAggregate sums numeric server
// metrics across nodes and reports per-node health numerically —
// node<i>_state follows breaker_state's all-numeric rule (the
// flush_last_error precedent: string-valued stats must never leak into a
// surface integer-parsing consumers read).
func TestClusterStatsAggregate(t *testing.T) {
	nodes := startNodes(t, 3)
	cl := newCluster(t, fastConfig(addrsOf(nodes)))

	const n = 90
	keys := make([][]byte, n)
	puts := make([][]wire.ColData, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("agg-%03d", i))
		puts[i] = []wire.ColData{{Col: 0, Data: []byte("x")}}
	}
	if _, err := cl.PutBatch(keys, puts); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.StatsAggregate()
	if err != nil {
		t.Fatal(err)
	}
	if stats["keys"] != n {
		t.Fatalf("aggregated keys = %d, want %d (sum across shards)", stats["keys"], n)
	}
	if stats["nodes_up"] != 3 {
		t.Fatalf("nodes_up = %d, want 3", stats["nodes_up"])
	}
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("node%d_state", i)
		v, present := stats[k]
		if !present {
			t.Fatalf("missing %s", k)
		}
		if v != int64(NodeUp) {
			t.Fatalf("%s = %d, want NodeUp", k, v)
		}
	}
	for _, k := range []string{"failovers", "hedges", "hedge_wins", "split_batches", "breaker_state"} {
		if _, present := stats[k]; !present {
			t.Fatalf("missing aggregate stat %s", k)
		}
	}
}

// TestClusterStatsAllNumeric pins the compat rule on the cluster surface
// itself: every value StatsAggregate returns must round-trip through
// ParseInt — by construction the map is int64, so the real assertion is
// that node_state and breaker_state arrive as numbers, never as state
// names, mirroring stats_compat_test.go server-side.
func TestClusterStatsAllNumeric(t *testing.T) {
	nodes := startNodes(t, 1)
	cl := newCluster(t, fastConfig(addrsOf(nodes)))
	stats, err := cl.StatsAggregate()
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range stats {
		if _, err := strconv.ParseInt(strconv.FormatInt(v, 10), 10, 64); err != nil {
			t.Fatalf("stat %s=%d failed integer round-trip", k, v)
		}
	}
	if st, present := stats["node0_state"]; !present || st < 0 || st > 2 {
		t.Fatalf("node0_state = %d (present=%v), want numeric 0..2", st, present)
	}
	if bs, present := stats["breaker_state"]; !present || bs < 0 || bs > 2 {
		t.Fatalf("breaker_state = %d (present=%v), want numeric 0..2", bs, present)
	}
}
