package btree

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/baseline/occ"
	"repro/internal/value"
)

type entry struct {
	key *bkey
	val unsafe.Pointer
}

// splitInsert splits the full, locked border node n while inserting key at
// the given rank, then ascends (Figure 5 adapted to whole keys). Both sides
// are rewritten compacted — the splitting bit already forces reader retries
// on this node, so permuter-mode's no-rearrangement benefit applies to
// non-split inserts, which is what the "+Permuter" experiment measures.
func (t *Tree) splitInsert(n *borderNode, rank int, key []byte, v *value.Value) {
	p := perm(n.permutation.Load())
	var ents [width + 1]entry
	for i := 0; i < width; i++ {
		slot := t.slotOf(n, p, i)
		pos := i
		if i >= rank {
			pos = i + 1
		}
		ents[pos] = entry{key: n.keys[slot].Load(), val: atomic.LoadPointer(&n.vals[slot])}
	}
	ents[rank] = entry{key: makeKey(key), val: unsafe.Pointer(v)}
	total := width + 1

	splitAt := total / 2
	if rank == width && n.next.Load() == nil {
		splitAt = total - 1 // sequential-insert optimization (§4.3)
	}
	left, right := ents[:splitAt], ents[splitAt:total]

	n.h.version.MarkSplitting()
	n2 := &borderNode{lowkey: right[0].key}
	n2.h.version.Init(occ.BorderBit | occ.LockBit | occ.SplittingBit)
	for i, e := range right {
		n2.keys[i].Store(e.key)
		atomic.StorePointer(&n2.vals[i], e.val)
		n2.used |= 1 << uint(i)
	}
	n2.permutation.Store(uint64(emptyPerm)&^0xf | uint64(len(right)))
	n2.nkeys.Store(int32(len(right)))

	for i, e := range left {
		n.keys[i].Store(e.key)
		atomic.StorePointer(&n.vals[i], e.val)
	}
	n.permutation.Store(uint64(emptyPerm)&^0xf | uint64(len(left)))
	n.nkeys.Store(int32(len(left)))
	n.used = (1 << width) - 1

	n2.next.Store(n.next.Load())
	n.next.Store(n2)

	t.ascend(&n.h, &n2.h, n2.lowkey)
}

// ascend inserts sibling n2 with separator sep into n's parent, splitting
// interior nodes upward as needed. n and n2 arrive locked; everything is
// unlocked on return.
func (t *Tree) ascend(n, n2 *nodeHeader, sep *bkey) {
	for {
		p := lockParent(n)
		if p == nil {
			r := &interiorNode{}
			r.h.version.Init(occ.RootBit)
			r.keys[0].Store(sep)
			r.child[0].Store(n)
			r.child[1].Store(n2)
			r.nkeys.Store(1)
			n.parent.Store(r)
			n2.parent.Store(r)
			n.version.ClearRoot()
			t.root.CompareAndSwap(n, &r.h)
			n.version.Unlock()
			n2.version.Unlock()
			return
		}
		if int(p.nkeys.Load()) < width {
			p.h.version.MarkInserting()
			nk := int(p.nkeys.Load())
			pos := 0
			for pos < nk && p.keys[pos].Load().compare(sep.bytes()) > 0 {
				pos++
			}
			for i := nk; i > pos; i-- {
				p.keys[i].Store(p.keys[i-1].Load())
			}
			for i := nk + 1; i > pos+1; i-- {
				p.child[i].Store(p.child[i-1].Load())
			}
			p.keys[pos].Store(sep)
			p.child[pos+1].Store(n2)
			n2.parent.Store(p)
			p.nkeys.Store(int32(nk + 1))
			n.version.Unlock()
			n2.version.Unlock()
			p.h.version.Unlock()
			return
		}
		p.h.version.MarkSplitting()
		n.version.Unlock()
		p2 := &interiorNode{}
		p2.h.version.Init(occ.LockBit | occ.SplittingBit)
		sep2 := t.splitInterior(p, p2, sep, n2)
		n2.version.Unlock()
		n, n2, sep = &p.h, &p2.h, sep2
	}
}

func lockParent(h *nodeHeader) *interiorNode {
	for {
		p := h.parent.Load()
		if p == nil {
			return nil
		}
		p.h.version.Lock()
		if h.parent.Load() == p {
			return p
		}
		p.h.version.Unlock()
	}
}

func (t *Tree) splitInterior(p, p2 *interiorNode, sep *bkey, c *nodeHeader) *bkey {
	nk := int(p.nkeys.Load()) // == width
	pos := 0
	for pos < nk && p.keys[pos].Load().compare(sep.bytes()) > 0 {
		pos++
	}
	var keys [width + 1]*bkey
	var kids [width + 2]*nodeHeader
	for i := 0; i < pos; i++ {
		keys[i] = p.keys[i].Load()
	}
	keys[pos] = sep
	for i := pos; i < nk; i++ {
		keys[i+1] = p.keys[i].Load()
	}
	for i := 0; i <= pos; i++ {
		kids[i] = p.child[i].Load()
	}
	kids[pos+1] = c
	for i := pos + 1; i <= nk; i++ {
		kids[i+1] = p.child[i].Load()
	}
	total := nk + 1
	mid := total / 2
	promoted := keys[mid]
	for i := 0; i < mid; i++ {
		p.keys[i].Store(keys[i])
	}
	for i := 0; i <= mid; i++ {
		p.child[i].Store(kids[i])
	}
	p.nkeys.Store(int32(mid))
	rk := total - mid - 1
	for i := 0; i < rk; i++ {
		p2.keys[i].Store(keys[mid+1+i])
	}
	for i := 0; i <= rk; i++ {
		child := kids[mid+1+i]
		p2.child[i].Store(child)
		child.parent.Store(p2)
	}
	p2.nkeys.Store(int32(rk))
	if pos+1 <= mid {
		c.parent.Store(p)
	}
	return promoted
}
