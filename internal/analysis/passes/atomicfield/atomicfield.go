// Package atomicfield enforces two atomic-access disciplines, program-wide:
//
//  1. A struct field whose address is ever passed to a sync/atomic function
//     (atomic.LoadPointer(&n.lv[i]), ...) is an atomic field everywhere: any
//     plain read or write of it elsewhere is a data race the race detector
//     only finds if a test happens to hit it. Fields of the atomic.Uint64
//     wrapper family are safe by construction and not in scope.
//
//  2. The node version word's bits encode the locking protocol, so mutating
//     calls on a nodeHeader's version field (Store, Swap, CompareAndSwap,
//     Add, And, Or) are only allowed in version.go, next to the lock
//     primitives that define the bit layout. Reads (Load) are free — that
//     is what optimistic readers do.
package atomicfield

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name:        "atomicfield",
	Doc:         "check that atomically-accessed fields are never accessed plainly, and version bits change only via version.go helpers",
	ProgramWide: true,
	Run:         run,
}

var mutators = map[string]bool{
	"Store": true, "Swap": true, "CompareAndSwap": true,
	"Add": true, "And": true, "Or": true,
}

func run(pass *analysis.Pass) {
	// Phase 1: collect fields accessed through sync/atomic, remembering the
	// selector nodes inside those calls (they are the sanctioned accesses).
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, pkg := range pass.All {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := analysis.CalleeOf(pkg.Info, call)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
					return true
				}
				if callee.Signature().Recv() != nil {
					// Methods of the atomic.Uint64 wrapper family: their
					// receivers are atomic by construction, and their &x.f
					// arguments (CompareAndSwap targets) are plain pointers.
					return true
				}
				for _, arg := range call.Args {
					sel := addressedField(arg)
					if sel == nil {
						continue
					}
					if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
						atomicFields[v] = true
						sanctioned[sel] = true
					}
				}
				return true
			})
		}
	}

	// Phase 2: flag plain accesses of those fields anywhere in the load.
	for _, pkg := range pass.All {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				v, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
				if !ok || !v.IsField() || !atomicFields[v] {
					return true
				}
				pass.Reportf(sel.Pos(), "plain access of field %s, which is accessed with sync/atomic elsewhere", v.Name())
				return true
			})
		}
	}

	// Phase 3: version-bit mutations outside version.go.
	for _, pkg := range pass.All {
		for _, file := range pkg.Files {
			fname := filepath.Base(pass.Fset().Position(file.Pos()).Filename)
			if fname == "version.go" {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !mutators[sel.Sel.Name] {
					return true
				}
				inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
				if !ok || inner.Sel.Name != "version" {
					return true
				}
				v, ok := pkg.Info.Uses[inner.Sel].(*types.Var)
				if !ok || !v.IsField() || !isNodeHeaderField(v) {
					return true
				}
				pass.Reportf(call.Pos(), "node version bits mutated outside version.go; use the version.go helpers")
				return true
			})
		}
	}
}

// addressedField unwraps &x.f or &x.f[i] to the field selector.
func addressedField(arg ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok {
		return nil
	}
	inner := ast.Unparen(u.X)
	if ix, ok := inner.(*ast.IndexExpr); ok {
		inner = ast.Unparen(ix.X)
	}
	sel, _ := inner.(*ast.SelectorExpr)
	return sel
}

// isNodeHeaderField reports whether the field belongs to a struct type
// named nodeHeader (the version-word rule's scope).
func isNodeHeaderField(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.Name() != "nodeHeader" {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return true
			}
		}
	}
	return false
}
