package core

import (
	"fmt"
	"testing"

	"repro/internal/value"
)

// Apply returning nil must leave the tree untouched: no phantom insert for
// absent keys, no replacement for present ones.
func TestApplyDecline(t *testing.T) {
	tr := New()

	// Decline on an absent key: nothing is inserted.
	old, stored := tr.Apply([]byte("missing"), func(old *value.Value) *value.Value {
		if old != nil {
			t.Fatalf("expected nil old for absent key")
		}
		return nil
	})
	if old != nil || stored != nil {
		t.Fatalf("decline returned old=%v stored=%v", old, stored)
	}
	if tr.Len() != 0 {
		t.Fatalf("decline inserted a key: len=%d", tr.Len())
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("declined key is visible")
	}

	// Accept on an absent key: ordinary insert.
	want := value.New([]byte("v1"))
	_, stored = tr.Apply([]byte("k"), func(*value.Value) *value.Value { return want })
	if stored != want || tr.Len() != 1 {
		t.Fatalf("accepting apply did not insert (stored=%v len=%d)", stored, tr.Len())
	}

	// Decline on a present key: the value survives and old is reported.
	old, stored = tr.Apply([]byte("k"), func(old *value.Value) *value.Value {
		if old != want {
			t.Fatalf("apply saw old=%v", old)
		}
		return nil
	})
	if old != want || stored != nil {
		t.Fatalf("decline on present key: old=%v stored=%v", old, stored)
	}
	if got, ok := tr.Get([]byte("k")); !ok || got != want {
		t.Fatalf("value replaced by declined apply: %v %v", got, ok)
	}
}

// Declines work with suffix keys (and their layer push-downs) too, since
// CAS requests may carry keys of any length.
func TestApplyDeclineLongKeys(t *testing.T) {
	tr := New()
	long := []byte("a-key-longer-than-eight-bytes")
	v := value.New([]byte("x"))
	tr.Put(long, v)
	old, stored := tr.Apply(long, func(*value.Value) *value.Value { return nil })
	if old != v || stored != nil {
		t.Fatalf("decline on suffix key: old=%v stored=%v", old, stored)
	}
	// Declining a different long key that shares the 8-byte prefix must not
	// create a layer or insert anything.
	other := []byte("a-key-longer-with-other-tail")
	if _, stored := tr.Apply(other, func(*value.Value) *value.Value { return nil }); stored != nil {
		t.Fatalf("decline stored %v", stored)
	}
	if _, ok := tr.Get(other); ok {
		t.Fatal("declined long key visible")
	}
	if tr.Len() != 1 {
		t.Fatalf("len=%d after declines", tr.Len())
	}
}

// The batched path honors the same contract: apply returning nil skips the
// key, whether it resolves through a fresh descent or an extended run.
func TestPutBatchIntoDecline(t *testing.T) {
	tr := New()
	var keys [][]byte
	for i := 0; i < 64; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key%04d", i)))
	}
	// Preload the even keys.
	for i := 0; i < 64; i += 2 {
		tr.Put(keys[i], value.New(keys[i]))
	}
	// Batch over all keys, declining every odd (absent) key and accepting
	// every even one with a replacement value.
	applied := make([]bool, 64)
	tr.PutBatch(keys, func(i int, old *value.Value) *value.Value {
		if i%2 == 1 {
			if old != nil {
				t.Errorf("key %d: unexpected old value", i)
			}
			return nil
		}
		if old == nil {
			t.Errorf("key %d: preloaded value missing", i)
		}
		applied[i] = true
		return value.New([]byte("updated"))
	})
	if tr.Len() != 32 {
		t.Fatalf("declined keys were inserted: len=%d", tr.Len())
	}
	for i := 0; i < 64; i++ {
		v, ok := tr.Get(keys[i])
		if i%2 == 1 {
			if ok {
				t.Fatalf("declined key %d visible", i)
			}
			continue
		}
		if !applied[i] || !ok || string(v.Col(0)) != "updated" {
			t.Fatalf("key %d not updated (applied=%v ok=%v)", i, applied[i], ok)
		}
	}
}
