package kvstore

import (
	"context"
	"errors"

	"repro/internal/epoch"
	"repro/internal/value"
)

// Session is one worker's handle onto the store: it binds operations to the
// worker's log (each query thread maintains its own log file and in-memory
// log buffer, §5) and registers an epoch handle so deferred reclamation
// waits for the session's in-flight operations (§4.6.1).
//
// A Session is not safe for concurrent use; create one per worker goroutine.
type Session struct {
	s      *Store
	worker int
	h      *epoch.Handle

	put1  [1]value.ColPut // PutSimple scratch (Put does not retain the slice)
	batch BatchScratch    // GetBatch/GetBatchInto scratch
}

// Session creates a session bound to the given worker's log.
func (s *Store) Session(worker int) *Session {
	return &Session{s: s, worker: worker, h: s.mgr.Register()}
}

// Worker reports the worker id the session is bound to — the index of the
// log stream its puts append to, and the shard its latency observations
// land in.
func (ss *Session) Worker() int { return ss.worker }

// Close unregisters the session from the epoch manager.
func (ss *Session) Close() {
	ss.s.mgr.Unregister(ss.h)
}

// Get returns the requested columns of key (nil cols = all).
func (ss *Session) Get(key []byte, cols []int) ([][]byte, bool) {
	ss.h.Enter()
	defer ss.h.Exit()
	ss.s.cache.NoteAccess(ss.worker, key)
	return ss.s.Get(key, cols)
}

// GetInto is Get appending the columns to dst (see Store.GetInto); with a
// reused dst the read path performs no allocations. (In cache mode the read
// additionally records the key's hash into the worker's lossy access ring —
// an atomic add and store, still allocation-free.)
func (ss *Session) GetInto(key []byte, cols []int, dst [][]byte) ([][]byte, bool) {
	ss.h.Enter()
	defer ss.h.Exit()
	ss.s.cache.NoteAccess(ss.worker, key)
	return ss.s.GetInto(key, cols, dst)
}

// GetBatch retrieves many keys in one epoch-protected critical section,
// descending in tree order to share cache paths (§4.8). Results are in
// input order; cols == nil returns all columns.
func (ss *Session) GetBatch(keys [][]byte, cols []int) ([][][]byte, []bool) {
	ss.h.Enter()
	defer ss.h.Exit()
	if ss.s.cache.EvictionEnabled() {
		for _, k := range keys {
			ss.s.cache.NoteAccess(ss.worker, k)
		}
	}
	vals, ok := ss.s.GetBatchInto(keys, &ss.batch)
	// Copy the found flags out of the session scratch: this is the safe
	// allocating wrapper, so nothing it returns may alias reusable state.
	found := make([]bool, len(ok))
	copy(found, ok)
	return extractBatchCols(vals, ok, cols), found
}

// GetBatchInto is the allocation-free batched lookup: results live in the
// session's scratch and are valid until the session's next batched get.
// Column extraction is the caller's job (see AppendCols).
func (ss *Session) GetBatchInto(keys [][]byte) ([]*value.Value, []bool) {
	ss.h.Enter()
	defer ss.h.Exit()
	if ss.s.cache.EvictionEnabled() {
		for _, k := range keys {
			ss.s.cache.NoteAccess(ss.worker, k)
		}
	}
	return ss.s.GetBatchInto(keys, &ss.batch)
}

// Put applies column modifications atomically via this session's log.
// Nothing is retained: the puts slice, the Data bytes, and the key are all
// copied (into the packed value and the log buffer), so callers may reuse
// their buffers immediately.
func (ss *Session) Put(key []byte, puts []value.ColPut) uint64 {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.Put(ss.worker, key, puts)
}

// PutSimple stores data as column 0. Neither key nor data is retained.
func (ss *Session) PutSimple(key, data []byte) uint64 {
	ss.put1[0] = value.ColPut{Col: 0, Data: data}
	return ss.Put(key, ss.put1[:])
}

// PutTTL is Put with an expiry deadline in unix nanoseconds (0 = never);
// see Store.PutTTL for cache-mode TTL semantics.
func (ss *Session) PutTTL(key []byte, puts []value.ColPut, expiresAt uint64) uint64 {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.PutTTL(ss.worker, key, puts, expiresAt)
}

// PutSimpleTTL stores data as column 0 with an expiry deadline.
func (ss *Session) PutSimpleTTL(key, data []byte, expiresAt uint64) uint64 {
	ss.put1[0] = value.ColPut{Col: 0, Data: data}
	return ss.PutTTL(key, ss.put1[:], expiresAt)
}

// Touch resets key's expiry without changing its columns; ok is false if
// the key is absent or already expired. See Store.Touch.
func (ss *Session) Touch(key []byte, expiresAt uint64) (uint64, bool) {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.Touch(ss.worker, key, expiresAt)
}

// CasPut conditionally applies column modifications: the write succeeds
// only if key's current version equals expect (0 = key absent), evaluated
// under the owning border node's lock. Success is logged as an ordinary put
// and returns the new version; mismatch changes nothing and returns the
// current version with ok false. See Store.CasPut.
func (ss *Session) CasPut(key []byte, expect uint64, puts []value.ColPut) (ver uint64, ok bool) {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.CasPut(ss.worker, key, expect, puts)
}

// ErrNoBackend is returned by GetOrLoad when the store has no configured
// backend tier — a miss then has nowhere to read through to.
var ErrNoBackend = errors.New("kvstore: no backend configured")

// GetOrLoad returns key's value, reading through the configured backend on
// miss. The in-memory hit path is the ordinary epoch-protected lookup —
// allocation-free, never blocking — while a miss funnels into the loader:
// exactly one backend flight per key runs at a time and every concurrent
// miss parks on its result (herd protection), honoring ctx while parked.
//
// Returns (value, stale, error). A nil value with nil error is an
// authoritative miss (absent both in memory and upstream, possibly
// negative-cached). stale is true when the backend could not answer and the
// value is a resident expired one served under the MaxStale window; values
// are immutable, so the result stays readable after the call regardless.
func (ss *Session) GetOrLoad(ctx context.Context, key []byte) (*value.Value, bool, error) {
	ss.h.Enter()
	ss.s.cache.NoteAccess(ss.worker, key)
	v, ok := ss.s.tree.Get(key)
	ss.h.Exit()
	if ok && !expired(v) {
		return v, false, nil
	}
	// Miss: the epoch is released before the flight — a backend load can
	// take seconds, and pinning an epoch that long would stall deferred
	// reclamation storewide. The loader re-enters around tree operations.
	if ss.s.loader == nil {
		return nil, false, ErrNoBackend
	}
	return ss.s.loader.load(ctx, ss, key)
}

// GetValue returns key's current packed value. Values are immutable and
// garbage-collected, so the result stays safe to read after the call; the
// server uses this to surface value versions alongside columns (CAS needs
// a version to expect).
func (ss *Session) GetValue(key []byte) (*value.Value, bool) {
	ss.h.Enter()
	defer ss.h.Exit()
	ss.s.cache.NoteAccess(ss.worker, key)
	return ss.s.GetValue(key)
}

// PutBatchInto applies one put per key in a single epoch-protected batched
// tree pass, sharing border-node lock acquisitions between co-located keys
// (§4.8 applied to writes) and encoding all log records under one log-
// buffer lock. The returned versions (input order) live in the session's
// scratch and are valid until the session's next batched operation.
// Duplicate keys apply in input order; no inputs are retained.
func (ss *Session) PutBatchInto(keys [][]byte, puts [][]value.ColPut) []uint64 {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.PutBatchInto(ss.worker, keys, puts, &ss.batch)
}

// PutBatch is PutBatchInto returning a fresh versions slice.
func (ss *Session) PutBatch(keys [][]byte, puts [][]value.ColPut) []uint64 {
	vers := ss.PutBatchInto(keys, puts)
	out := make([]uint64, len(vers))
	copy(out, vers)
	return out
}

// Remove deletes key via this session's log.
func (ss *Session) Remove(key []byte) bool {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.Remove(ss.worker, key)
}

// GetRange returns up to n pairs from start (nil cols = all columns).
func (ss *Session) GetRange(start []byte, n int, cols []int) []Pair {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.GetRange(start, n, cols)
}

// GetRangeInto is GetRange appending into the caller's reusable arenas; see
// Store.GetRangeInto.
func (ss *Session) GetRangeInto(start []byte, n int, cols []int, sc *RangeScratch) []Pair {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.GetRangeInto(start, n, cols, sc)
}
