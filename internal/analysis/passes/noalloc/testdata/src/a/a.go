// Package a is the noalloc golden fixture: every allocation source the pass
// knows, each in a //masstree:noalloc function with a clean counterpart —
// the compiler-optimized conversion forms, pointer-shaped boxing, amortized
// append growth, and unannotated functions.
package a

import (
	"errors"
	"fmt"
)

type buf struct {
	b []byte
}

func (b *buf) M() {}

func run0() {}

//masstree:noalloc
func allocs(n int, s string, b []byte) {
	_ = make([]byte, n)  // want `make allocates`
	_ = new(buf)         // want `new allocates`
	_ = []int{1, 2}      // want `slice literal allocates`
	_ = map[string]int{} // want `map literal allocates`
	_ = &buf{}           // want `escaping composite literal allocates`
	_ = string(b)        // want `string conversion allocates`
	_ = []byte(s)        // want `\[\]byte conversion allocates`
	_ = s + "x"          // want `string concatenation allocates`
	fmt.Println(s)       // want `fmt\.Println allocates`
	_ = errors.New("x")  // want `errors\.New allocates`
	go run0()            // want `go statement allocates`
}

//masstree:noalloc
func concat(s string) string {
	s += "y" // want `string concatenation allocates`
	return s
}

// --- interface boxing ---

func take(x interface{}) {}

//masstree:noalloc
func box(v int, p *buf) {
	var i interface{}
	i = v // want `interface conversion boxes int and allocates`
	i = p // clean: pointer-shaped values fit the interface word
	_ = i
	take(v)   // want `interface conversion boxes int and allocates`
	take(p)   // clean
	take(nil) // clean: nil converts for free
}

//masstree:noalloc
func retBox(v int) interface{} {
	return v // want `interface conversion boxes int and allocates`
}

//masstree:noalloc
func retPtr(p *buf) interface{} { // clean
	return p
}

// --- closures and method values ---

//masstree:noalloc
func closure(n int) func() int {
	return func() int { return n } // want `closure captures n and allocates`
}

//masstree:noalloc
func staticLit() func() int { // clean: capture-free literals are static
	return func() int { return 7 }
}

//masstree:noalloc
func methodVal(b *buf) func() {
	return b.M // want `method value allocates`
}

//masstree:noalloc
func methodCall(b *buf) { // clean: a direct call is not a method value
	b.M()
}

// --- exempt forms ---

//masstree:noalloc
func exempt(m map[string]int, b []byte, s string) (int, bool) {
	if string(b) == s { // clean: comparison conversion does not allocate
		return m[string(b)], true // clean: map-index conversion does not allocate
	}
	return 0, false
}

//masstree:noalloc
func appendGrow(dst []byte, b byte) []byte { // clean: amortized growth is not flagged
	return append(dst, b)
}

//masstree:noalloc
func valueLit() buf { // clean: a value composite literal does not escape
	return buf{}
}

func unannotated() []byte { // clean: only //masstree:noalloc functions are checked
	return make([]byte, 64)
}

//masstree:noalloc
func warmup(n int) []int { // clean: the allow covers the warm-up make
	return make([]int, n) //lint:allow noalloc warm-up allocation amortized over the scratch lifetime
}
