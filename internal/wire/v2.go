package wire

// Protocol v2: hello negotiation and tagged frames. See the package comment
// for the layouts. The helpers here are split so each side of a connection
// can choose the scratch a frame decodes into *after* learning its tag —
// the async client reads a header, looks up the in-flight request with that
// tag, and reads the body straight into that request's reusable buffers.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
)

// Protocol versions negotiated by the hello exchange. Version1 is the
// original one-frame-in-flight protocol spoken by clients that send no
// hello; Version2 adds tagged frames and pipelining.
const (
	Version1 uint8 = 1
	Version2 uint8 = 2
)

// MaxVersion is the newest protocol version this build speaks; the server
// answers a hello proposing anything newer with MaxVersion.
const MaxVersion = Version2

// helloMagic precedes the version byte in a hello frame. Its first four
// bytes decode as an impossible v1 frame length (far above MaxMessage) and
// an impossible v2 header (a masked length above MaxMessage), so every
// legacy decoder rejects a hello cleanly instead of misreading it.
var helloMagic = [8]byte{0xff, 0xff, 0xff, 0xff, 'M', 'T', 'K', 'V'}

// HelloSize is the encoded size of a hello frame.
const HelloSize = 9

// v2FrameBit marks a length word as a v2 tagged-frame header. MaxMessage is
// far below 1<<31, so the bit never collides with an honest v1 length — a
// v1-only peer (the UDP path included) rejects a v2 frame as oversized
// instead of misparsing the tag as a batch count.
const v2FrameBit = uint32(1) << 31

// taggedHeaderSize is the v2 frame header: marked length plus tag.
const taggedHeaderSize = 8

var (
	errNotV2      = errors.New("wire: frame is not protocol v2")
	errBadHello   = errors.New("wire: bad hello magic")
	errBadVersion = errors.New("wire: bad hello version")
)

// AppendHello appends a hello frame proposing (or, server-side, accepting)
// the given protocol version.
func AppendHello(dst []byte, version uint8) []byte {
	dst = append(dst, helloMagic[:]...)
	return append(dst, version)
}

// WriteHello writes one hello frame. Callers flush their own writers.
func WriteHello(w io.Writer, version uint8) error {
	var buf [HelloSize]byte
	b := AppendHello(buf[:0], version)
	_, err := w.Write(b)
	return err
}

// IsHelloPrefix reports whether the first four bytes read from a connection
// begin a hello frame rather than a v1 or v2 length header.
func IsHelloPrefix(b []byte) bool {
	return len(b) >= 4 && b[0] == 0xff && b[1] == 0xff && b[2] == 0xff && b[3] == 0xff
}

// ReadHello consumes one hello frame and returns the version it carries.
func ReadHello(r io.Reader) (uint8, error) {
	var buf [HelloSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	if !bytes.Equal(buf[:8], helloMagic[:]) {
		return 0, errBadHello
	}
	if buf[8] < Version1 {
		return 0, errBadVersion
	}
	return buf[8], nil
}

// AppendTaggedRequests appends a complete v2 tagged request frame to dst.
func AppendTaggedRequests(dst []byte, tag uint32, reqs []Request) ([]byte, error) {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, tag)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(reqs)))
	for i := range reqs {
		dst = appendRequest(dst, &reqs[i])
	}
	return finishTaggedFrame(dst, base)
}

// AppendTaggedResponses appends a complete v2 tagged response frame to dst.
func AppendTaggedResponses(dst []byte, tag uint32, resps []Response) ([]byte, error) {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, tag)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resps)))
	for i := range resps {
		dst = appendResponse(dst, &resps[i])
	}
	return finishTaggedFrame(dst, base)
}

// finishTaggedFrame patches the marked length header reserved at base; the
// length covers the tag plus the body.
func finishTaggedFrame(dst []byte, base int) ([]byte, error) {
	n := len(dst) - base - 4
	if n > MaxMessage {
		return dst[:base], errTooLarge
	}
	binary.LittleEndian.PutUint32(dst[base:], uint32(n)|v2FrameBit)
	return dst, nil
}

// ReadTaggedHeader reads one v2 frame header and returns the frame's tag
// and remaining body length. A header whose v2 bit is unset (a v1 frame on
// a negotiated-v2 connection) is a protocol violation and returns an error.
func ReadTaggedHeader(r io.Reader) (tag uint32, bodyLen int, err error) {
	var hdr [taggedHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n&v2FrameBit == 0 {
		return 0, 0, errNotV2
	}
	n &^= v2FrameBit
	if n > MaxMessage {
		return 0, 0, errTooLarge
	}
	if n < 4 {
		return 0, 0, errShort
	}
	return binary.LittleEndian.Uint32(hdr[4:]), int(n) - 4, nil
}

// ReadTaggedRequestBody reads a request frame's body (after its header was
// consumed by ReadTaggedHeader) into d's reusable frame buffer and returns
// it for ParseRequests or ParseRequestsLenient.
func ReadTaggedRequestBody(r io.Reader, bodyLen int, d *DecodeBuf) ([]byte, error) {
	return readBodyInto(r, bodyLen, &d.frame)
}

// ReadTaggedResponseBody reads and parses a response frame's body into d.
// The responses alias d and are valid until the next call with the same
// scratch.
func ReadTaggedResponseBody(r io.Reader, bodyLen int, d *RespDecodeBuf) ([]Response, error) {
	body, err := readBodyInto(r, bodyLen, &d.frame)
	if err != nil {
		return nil, err
	}
	return ParseResponses(body, d)
}

// ReadRequestBody reads one v1 framed body into d's frame buffer without
// parsing it, so the caller can choose strict (ParseRequests) or lenient
// (ParseRequestsLenient) decoding.
func ReadRequestBody(r io.Reader, d *DecodeBuf) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxMessage {
		return nil, errTooLarge
	}
	return readBodyInto(r, int(n), &d.frame)
}

// readBodyInto reads n bytes into *buf, growing it as needed; the buffer is
// retained across calls for reuse.
func readBodyInto(r io.Reader, n int, buf *[]byte) ([]byte, error) {
	if n < 0 || n > MaxMessage {
		return nil, errTooLarge
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	} else {
		*buf = (*buf)[:n]
	}
	if _, err := io.ReadFull(r, *buf); err != nil {
		return nil, err
	}
	return *buf, nil
}
