package repro

// Benchmarks mirroring the paper's tables and figures (DESIGN.md experiment
// index). Each BenchmarkFigN/BenchmarkSecN corresponds to one table or
// figure; `cmd/masstree-bench` prints the full paper-style rows, while these
// testing.B entry points measure the same code paths under the standard Go
// benchmark harness:
//
//	go test -bench=. -benchmem .
import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"

	"repro/internal/baseline/binarytree"
	"repro/internal/baseline/btree"
	"repro/internal/baseline/fourtree"
	"repro/internal/baseline/hashtable"
	"repro/internal/baseline/partition"
	"repro/internal/baseline/seqtree"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/value"
	"repro/internal/workload"
	"repro/internal/ycsb"
)

const benchKeys = 100_000

func benchKeySet(seed int64) [][]byte {
	return workload.Keys(workload.Decimal(seed), benchKeys)
}

type kvIface interface {
	Get(key []byte) (*value.Value, bool)
	Put(key []byte, v *value.Value)
}

type kvFns struct {
	get func([]byte) (*value.Value, bool)
	put func([]byte, *value.Value)
}

func (f kvFns) Get(k []byte) (*value.Value, bool) { return f.get(k) }
func (f kvFns) Put(k []byte, v *value.Value)      { f.put(k, v) }

// fig8Stores builds the Figure 8 ladder for benchmarking.
func fig8Stores() map[string]func() kvIface {
	return map[string]func() kvIface{
		"Binary": func() kvIface {
			t := binarytree.New()
			return kvFns{t.Get, func(k []byte, v *value.Value) { t.Put(k, v) }}
		},
		"Arena_IntCmp": func() kvIface {
			t := binarytree.New(binarytree.WithArena(), binarytree.WithIntCmp())
			return kvFns{t.Get, func(k []byte, v *value.Value) { t.Put(k, v) }}
		},
		"4tree": func() kvIface {
			t := fourtree.New()
			return kvFns{t.Get, func(k []byte, v *value.Value) { t.Put(k, v) }}
		},
		"Btree": func() kvIface {
			t := btree.New()
			return kvFns{t.Get, func(k []byte, v *value.Value) { t.Put(k, v) }}
		},
		"BtreePermuter": func() kvIface {
			t := btree.New(btree.WithPermuter())
			return kvFns{t.Get, func(k []byte, v *value.Value) { t.Put(k, v) }}
		},
		"Masstree": func() kvIface {
			t := core.New()
			return kvFns{t.Get, func(k []byte, v *value.Value) { t.Put(k, v) }}
		},
	}
}

// BenchmarkFig8 measures the §6.2 factor-analysis rungs: get and put on
// 1-to-10-byte decimal keys.
func BenchmarkFig8(b *testing.B) {
	keys := benchKeySet(1)
	vals := make([]*value.Value, len(keys))
	for i, k := range keys {
		vals[i] = value.New(k)
	}
	for name, mk := range fig8Stores() {
		b.Run(name+"/get", func(b *testing.B) {
			st := mk()
			for i, k := range keys {
				st.Put(k, vals[i])
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					st.Get(keys[(i*61)%len(keys)])
					i++
				}
			})
		})
		b.Run(name+"/put", func(b *testing.B) {
			st := mk()
			b.ResetTimer()
			var n atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(n.Add(1)) - 1
					st.Put(keys[i%len(keys)], vals[i%len(keys)])
				}
			})
		})
	}
}

// BenchmarkFig9 measures §6.4's shared-prefix key-length sweep: Masstree vs
// the +Permuter B-tree.
func BenchmarkFig9(b *testing.B) {
	for _, keyLen := range []int{8, 24, 48} {
		keys := workload.Keys(workload.Prefixed(2, keyLen), benchKeys)
		mt := core.New()
		bt := btree.New(btree.WithPermuter())
		for _, k := range keys {
			v := value.New(k)
			mt.Put(k, v)
			bt.Put(k, v)
		}
		b.Run(fmt.Sprintf("Masstree/len%d", keyLen), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					mt.Get(keys[(i*61)%len(keys)])
					i++
				}
			})
		})
		b.Run(fmt.Sprintf("BtreePermuter/len%d", keyLen), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					bt.Get(keys[(i*61)%len(keys)])
					i++
				}
			})
		})
	}
}

// BenchmarkFig10 measures §6.5 scalability: parallel gets and puts on the
// shared tree (per-core series comes from -cpu=1,2,...).
func BenchmarkFig10(b *testing.B) {
	keys := benchKeySet(3)
	tr := core.New()
	for _, k := range keys {
		tr.Put(k, value.New(k))
	}
	b.Run("get", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				tr.Get(keys[(i*61)%len(keys)])
				i++
			}
		})
	})
	b.Run("put", func(b *testing.B) {
		var n atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(n.Add(1)) - 1
				k := keys[i%len(keys)]
				tr.Put(k, value.New(k))
			}
		})
	})
}

// BenchmarkFig11 measures §6.6 skew handling: shared Masstree vs the
// hard-partitioned store at delta = 0 and delta = 9.
func BenchmarkFig11(b *testing.B) {
	const parts = 16
	keys := benchKeySet(4)
	ps := partition.New(parts, 8)
	defer ps.Close()
	mt := core.New()
	perPart := make([][][]byte, parts)
	for _, k := range keys {
		p := ps.PartitionFor(k)
		perPart[p] = append(perPart[p], k)
		v := value.New(k)
		mt.Put(k, v)
		ps.Do(p, []partition.Op{{Kind: partition.OpPut, Key: k, Value: v}})
	}
	const batch = 64
	for _, delta := range []float64{0, 9} {
		b.Run(fmt.Sprintf("Masstree/delta%.0f", delta), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				skew := workload.NewPartitionSkew(1, parts, delta)
				i := 0
				for pb.Next() {
					kp := perPart[skew.Next()]
					if len(kp) > 0 {
						mt.Get(kp[(i*61)%len(kp)])
					}
					i++
				}
			})
		})
		b.Run(fmt.Sprintf("Partitioned/delta%.0f", delta), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				skew := workload.NewPartitionSkew(2, parts, delta)
				ops := make([]partition.Op, batch)
				i := 0
				for pb.Next() {
					p := skew.Next()
					kp := perPart[p]
					if len(kp) == 0 {
						continue
					}
					for j := range ops {
						ops[j] = partition.Op{Kind: partition.OpGet, Key: kp[(i+j)%len(kp)]}
					}
					ps.Do(p, ops)
					i++
				}
			})
		})
	}
}

// BenchmarkFig13 measures the §7 system-comparison code paths for the full
// Masstree system (logging on): uniform gets/puts and MYCSB mixes. The
// comparator stand-ins are exercised by cmd/masstree-bench -run fig13.
func BenchmarkFig13(b *testing.B) {
	dir, err := os.MkdirTemp("", "bench-fig13-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	const records = 50_000
	for i := uint64(0); i < records; i++ {
		key, cols := ycsb.LoadRecord(i)
		puts := make([]value.ColPut, len(cols))
		for c, col := range cols {
			puts[c] = value.ColPut{Col: c, Data: col}
		}
		st.Put(0, key, puts)
	}
	b.Run("uniform-get", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			gen := workload.UniformRecordKeys(11, records)
			for pb.Next() {
				st.Get(gen.Next(), []int{0})
			}
		})
	})
	b.Run("uniform-put", func(b *testing.B) {
		var w atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			worker := int(w.Add(1)) - 1
			gen := workload.UniformRecordKeys(int64(12+worker), records)
			data := []byte("8bytedat")
			for pb.Next() {
				st.Put(worker, gen.Next(), []value.ColPut{{Col: 0, Data: data}})
			}
		})
	})
	for _, wl := range []string{"A", "B", "C", "E"} {
		b.Run("MYCSB-"+wl, func(b *testing.B) {
			var w atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				worker := int(w.Add(1)) - 1
				src, err := ycsb.New(wl, records, int64(13+worker))
				if err != nil {
					panic(err)
				}
				for pb.Next() {
					op := src.Next()
					switch op.Kind {
					case ycsb.Read:
						st.Get(op.Key, ycsb.AllCols)
					case ycsb.Update:
						st.Put(worker, op.Key, []value.ColPut{{Col: op.Col, Data: op.Data}})
					case ycsb.ScanOp:
						st.GetRange(op.Key, op.ScanLen, []int{op.Col})
					}
				}
			})
		})
	}
}

// BenchmarkSec63 measures §6.3: Masstree vs the +IntCmp binary tree inside
// the logging system.
func BenchmarkSec63(b *testing.B) {
	keys := benchKeySet(5)
	dir, err := os.MkdirTemp("", "bench-sec63-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	for _, k := range keys {
		st.PutSimple(0, k, k)
	}
	bt := binarytree.New(binarytree.WithIntCmp(), binarytree.WithArena())
	for _, k := range keys {
		bt.Put(k, value.New(k))
	}
	b.Run("Masstree/get", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				st.Get(keys[(i*61)%len(keys)], nil)
				i++
			}
		})
	})
	b.Run("BinaryIntCmp/get", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				bt.Get(keys[(i*61)%len(keys)])
				i++
			}
		})
	})
}

// BenchmarkSec64 measures §6.4's flexibility costs: fixed-key B-tree,
// sequential tree, and hash table against Masstree.
func BenchmarkSec64(b *testing.B) {
	fixed := workload.Keys(workload.Fixed8Decimal(6), benchKeys)
	mt := core.New()
	bt := btree.New(btree.WithPermuter())
	ht := hashtable.New(3 * benchKeys)
	for _, k := range fixed {
		v := value.New(k)
		mt.Put(k, v)
		bt.Put(k, v)
		ht.Put(k, v)
	}
	b.Run("Masstree/get8", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				mt.Get(fixed[(i*61)%len(fixed)])
				i++
			}
		})
	})
	b.Run("FixedBtree/get8", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				bt.Get(fixed[(i*61)%len(fixed)])
				i++
			}
		})
	})
	b.Run("HashTable/get8", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				ht.Get(fixed[(i*61)%len(fixed)])
				i++
			}
		})
	})
	b.Run("SeqTree/put1core", func(b *testing.B) {
		st := seqtree.New()
		keys := benchKeySet(7)
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			st.Put(k, value.New(k))
		}
	})
	b.Run("Masstree/put1core", func(b *testing.B) {
		tr := core.New()
		keys := benchKeySet(7)
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			tr.Put(k, value.New(k))
		}
	})
}

// BenchmarkCkpt measures §5's checkpoint write and recovery.
func BenchmarkCkpt(b *testing.B) {
	dir, err := os.MkdirTemp("", "bench-ckpt-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeySet(8)
	for _, k := range keys {
		st.PutSimple(0, k, k)
	}
	b.Run("checkpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := st.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
	})
	st.Close()
	b.Run("recover", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: 2, MaintainEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			if r.Len() == 0 {
				b.Fatal("recovered nothing")
			}
			r.Close()
		}
	})
}

// BenchmarkCoreOps provides fine-grained single-operation costs for the
// central data structure (useful for profiling; not a paper figure).
func BenchmarkCoreOps(b *testing.B) {
	keys := benchKeySet(9)
	tr := core.New()
	for _, k := range keys {
		tr.Put(k, value.New(k))
	}
	b.Run("get-hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Get(keys[(i*61)%len(keys)])
		}
	})
	b.Run("get-miss", func(b *testing.B) {
		miss := []byte("zzzzzz-not-there")
		for i := 0; i < b.N; i++ {
			tr.Get(miss)
		}
	})
	b.Run("update", func(b *testing.B) {
		v := value.New([]byte("x"))
		for i := 0; i < b.N; i++ {
			tr.Put(keys[(i*61)%len(keys)], v)
		}
	})
	b.Run("scan100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			tr.Scan(keys[(i*61)%len(keys)], func([]byte, *value.Value) bool {
				n++
				return n < 100
			})
		}
	})
}
