package core

// Tree-shape statistics (§6.2's structural observations): the paper reports
// that a 140M-key 1-to-10-byte-decimal put workload puts 33% of its keys in
// layer-1 trie-nodes with only 2.3 keys per layer-1 tree on average, and
// that B-tree nodes average 75% full. Shape walks the physical structure
// and reports the equivalents, letting those claims be checked directly.
//
// Shape takes no locks; run it on a quiescent tree (it is a diagnostic, not
// an operation).

// LayerShape describes one trie depth.
type LayerShape struct {
	Trees         int // B+-trees at this depth (layer 0 has exactly one)
	BorderNodes   int
	InteriorNodes int
	Keys          int // keys stored at this depth (excluding layer links)
	LayerLinks    int // links to depth+1 trees
	MaxBTreeDepth int // deepest root-to-border path among this layer's trees
}

// ShapeStats is the result of a structure walk.
type ShapeStats struct {
	Layers []LayerShape
}

// TotalKeys sums keys across layers.
func (s ShapeStats) TotalKeys() int {
	n := 0
	for _, l := range s.Layers {
		n += l.Keys
	}
	return n
}

// KeysInLayer returns the fraction of all keys stored at trie depth d.
func (s ShapeStats) KeysInLayer(d int) float64 {
	t := s.TotalKeys()
	if t == 0 || d >= len(s.Layers) {
		return 0
	}
	return float64(s.Layers[d].Keys) / float64(t)
}

// AvgKeysPerTree returns the mean key count of depth-d trees (the paper's
// "average number of keys per layer-1 trie-node").
func (s ShapeStats) AvgKeysPerTree(d int) float64 {
	if d >= len(s.Layers) || s.Layers[d].Trees == 0 {
		return 0
	}
	return float64(s.Layers[d].Keys) / float64(s.Layers[d].Trees)
}

// BorderFill returns the mean occupancy of border nodes across all layers
// (live keys plus layer links over width).
func (s ShapeStats) BorderFill() float64 {
	nodes, slots := 0, 0
	for _, l := range s.Layers {
		nodes += l.BorderNodes
		slots += l.Keys + l.LayerLinks
	}
	if nodes == 0 {
		return 0
	}
	return float64(slots) / float64(nodes*width)
}

// Shape walks the tree and returns its structural statistics.
func (t *Tree) Shape() ShapeStats {
	var s ShapeStats
	t.shapeWalk(t.rootHeader(), 0, &s)
	return s
}

// Note: the walk must index s.Layers afresh on every update — recursion
// into deeper layers appends to the slice, which may reallocate it, so a
// held element pointer would go stale.
func (t *Tree) shapeWalk(root *nodeHeader, depth int, s *ShapeStats) {
	for len(s.Layers) <= depth {
		s.Layers = append(s.Layers, LayerShape{})
	}
	s.Layers[depth].Trees++
	d := t.shapeNode(root, depth, 1, s)
	if d > s.Layers[depth].MaxBTreeDepth {
		s.Layers[depth].MaxBTreeDepth = d
	}
}

// shapeNode returns the max border depth below h within its own B+-tree.
func (t *Tree) shapeNode(h *nodeHeader, depth, btDepth int, s *ShapeStats) int {
	v := h.version.Load()
	if isBorder(v) {
		n := h.border()
		s.Layers[depth].BorderNodes++
		perm := n.perm()
		for r := 0; r < perm.count(); r++ {
			slot := perm.slot(r)
			if n.keylen[slot].Load() == klLayer {
				s.Layers[depth].LayerLinks++
				t.shapeWalk(ascendToRoot((*nodeHeader)(n.loadLV(slot))), depth+1, s)
			} else {
				s.Layers[depth].Keys++
			}
		}
		return btDepth
	}
	in := h.interior()
	s.Layers[depth].InteriorNodes++
	nk := int(in.nkeys.Load())
	max := btDepth
	for i := 0; i <= nk; i++ {
		if c := in.child[i].Load(); c != nil {
			if d := t.shapeNode(c, depth, btDepth+1, s); d > max {
				max = d
			}
		}
	}
	return max
}
