package bench

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/wire"
)

// BenchmarkServerPutRoundTrip measures one client round trip carrying a
// batch of 64 puts — the write-path counterpart of BenchmarkServerRoundTrip.
// This is the regime of the paper's Figures 10/11: put-heavy traffic where
// per-operation allocation and the version clock dominate once the network
// round trip is amortized over the batch.
func BenchmarkServerPutRoundTrip(b *testing.B) {
	const nkeys = 4096
	const batch = 64

	b.Run("put64", func(b *testing.B) {
		c := startPipelineServer(b, nkeys)
		reqs := make([]wire.Request, batch)
		for i := range reqs {
			reqs[i] = wire.Request{Op: wire.OpPut, Key: pipelineKey(i * 13 % nkeys),
				Puts: []wire.ColData{{Col: 0, Data: []byte("updated-column-data")}}}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resps, err := c.DoReuse(reqs)
			if err != nil {
				b.Fatal(err)
			}
			if len(resps) != batch || resps[0].Status != wire.StatusOK {
				b.Fatalf("bad responses: %d status %d", len(resps), resps[0].Status)
			}
		}
		reportPerRequest(b, batch)
	})
}

// BenchmarkPutSimple measures the store-level single-key put with logging
// disabled: tree descent + value construction + version assignment only.
func BenchmarkPutSimple(b *testing.B) {
	store, err := kvstore.Open(kvstore.Config{MaintainEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	sess := store.Session(0)
	defer sess.Close()
	const nkeys = 4096
	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%016d", i))
		sess.PutSimple(keys[i], []byte("initial-column-data"))
	}
	data := []byte("updated-column-data")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.PutSimple(keys[i%nkeys], data)
	}
}

// BenchmarkPutSimpleParallel measures store-level puts from many goroutines,
// each with its own session/worker — the regime where the old global version
// clock serialized every writer on one cache line and the sharded clock
// (§5.1) does not.
func BenchmarkPutSimpleParallel(b *testing.B) {
	// Workers sizes the clock shards (and would size the logs, if enabled);
	// give every CPU its own shard as the paper gives every core its clock.
	store, err := kvstore.Open(kvstore.Config{MaintainEvery: -1, Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	const nkeys = 65536
	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%016d", i))
		store.PutSimple(0, keys[i], []byte("initial-column-data"))
	}
	var nextWorker atomic.Int64
	data := []byte("updated-column-data")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(nextWorker.Add(1) - 1)
		sess := store.Session(w)
		defer sess.Close()
		i := w * 31
		for pb.Next() {
			sess.PutSimple(keys[i%nkeys], data)
			i += 7
		}
	})
}
