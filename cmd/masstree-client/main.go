// Command masstree-client is a command-line client for masstree-server.
//
// Usage:
//
//	masstree-client -addr host:7500 get KEY [COL...]
//	masstree-client -addr host:7500 put KEY VALUE
//	masstree-client -addr host:7500 putcol KEY COL VALUE [COL VALUE...]
//	masstree-client -addr host:7500 cas KEY EXPECTVER VALUE
//	masstree-client -addr host:7500 del KEY
//	masstree-client -addr host:7500 scan START N
//
// get prints the value's version; cas writes column 0 only if the key's
// current version still equals EXPECTVER (0 = key must be absent), printing
// either the new version or the conflicting current version — the version a
// retry should expect after re-reading.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"

	"repro/internal/client"
	"repro/internal/wire"
)

func main() {
	var addr = flag.String("addr", "127.0.0.1:7500", "server address")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	c, err := client.Dial(*addr)
	if err != nil {
		log.Fatalf("masstree-client: %v", err)
	}
	defer c.Close()

	switch args[0] {
	case "get":
		if len(args) < 2 {
			usage()
		}
		var cols []int
		for _, a := range args[2:] {
			n, err := strconv.Atoi(a)
			if err != nil {
				log.Fatalf("masstree-client: bad column %q", a)
			}
			cols = append(cols, n)
		}
		vals, ver, ok, err := c.GetVer([]byte(args[1]), cols)
		check(err)
		if !ok {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Printf("version %d\n", ver)
		for i, v := range vals {
			fmt.Printf("col %d: %q\n", i, v)
		}
	case "put":
		if len(args) != 3 {
			usage()
		}
		ver, err := c.PutSimple([]byte(args[1]), []byte(args[2]))
		check(err)
		fmt.Printf("ok (version %d)\n", ver)
	case "putcol":
		if len(args) < 4 || len(args)%2 != 0 {
			usage()
		}
		var puts []wire.ColData
		for i := 2; i < len(args); i += 2 {
			col, err := strconv.Atoi(args[i])
			if err != nil {
				log.Fatalf("masstree-client: bad column %q", args[i])
			}
			puts = append(puts, wire.ColData{Col: col, Data: []byte(args[i+1])})
		}
		ver, err := c.Put([]byte(args[1]), puts)
		check(err)
		fmt.Printf("ok (version %d)\n", ver)
	case "cas":
		if len(args) != 4 {
			usage()
		}
		expect, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			log.Fatalf("masstree-client: bad expected version %q", args[2])
		}
		ver, ok, err := c.CasPut([]byte(args[1]), expect,
			[]wire.ColData{{Col: 0, Data: []byte(args[3])}})
		check(err)
		if !ok {
			fmt.Printf("conflict (current version %d)\n", ver)
			os.Exit(1)
		}
		fmt.Printf("ok (version %d)\n", ver)
	case "del":
		if len(args) != 2 {
			usage()
		}
		existed, err := c.Remove([]byte(args[1]))
		check(err)
		fmt.Println("removed:", existed)
	case "scan":
		if len(args) != 3 {
			usage()
		}
		n, err := strconv.Atoi(args[2])
		check(err)
		pairs, err := c.GetRange([]byte(args[1]), n, nil)
		check(err)
		for _, p := range pairs {
			fmt.Printf("%q: %q\n", p.Key, p.Cols)
		}
	case "stats":
		stats, err := c.Stats()
		check(err)
		// Print every metric the server reports, sorted, so new counters
		// (batched_gets, batched_puts, flush_errors, ...) show up without
		// client changes.
		names := make([]string, 0, len(stats))
		for name := range stats {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-16s %d\n", name, stats[name])
		}
	default:
		usage()
	}
}

func check(err error) {
	if err != nil {
		log.Fatalf("masstree-client: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: masstree-client [-addr host:port] COMMAND
  get KEY [COL...]             read a key (prints its version and columns)
  put KEY VALUE                write column 0
  putcol KEY COL VALUE [...]   write specific columns atomically
  cas KEY EXPECTVER VALUE      conditional write: applies only if the key's
                               version is still EXPECTVER (0 = absent)
  del KEY                      remove a key
  scan START N                 range query: up to N pairs from START
  stats                        server statistics (tree counters)`)
	os.Exit(2)
}
