package core

import (
	"testing"
)

// checkInvariants physically walks the tree (quiescent; no concurrency) and
// asserts the structural invariants of §4:
//   - every permutation is a true permutation of 0..14,
//   - border keys are strictly increasing by (slice, ordinal),
//   - at most one >8-byte (suffix/layer) key per slice,
//   - interior separators are strictly increasing and route consistently,
//   - children's parent pointers point back at their interior node,
//   - border lowkeys bound their contents,
//   - the border list is correctly doubly linked in key order.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	checkLayerInvariants(t, tr.rootHeader(), 0)
}

func checkLayerInvariants(t *testing.T, root *nodeHeader, depth int) {
	t.Helper()
	if depth > 64 {
		t.Fatal("layer depth > 64: cycle?")
	}
	var borders []*borderNode
	collectBorders(t, root, nil, &borders)
	for i, n := range borders {
		perm := n.perm()
		seen := 0
		for r := 0; r < width; r++ {
			s := perm.slot(r)
			if s < 0 || s >= width || seen&(1<<uint(s)) != 0 {
				t.Fatalf("border %p: keyindex not a permutation: %v", n, perm.indexes())
			}
			seen |= 1 << uint(s)
		}
		prevSlice, prevOrd := uint64(0), -2
		for r := 0; r < perm.count(); r++ {
			slot := perm.slot(r)
			ks := n.keyslice[slot].Load()
			ko := ordOf(n.keylen[slot].Load())
			if c := cmpKey(prevSlice, prevOrd, ks, ko); c >= 0 && prevOrd != -2 {
				t.Fatalf("border %p: keys out of order at rank %d: (%#x,%d) then (%#x,%d)\n%s",
					n, r, prevSlice, prevOrd, ks, ko, dumpBorder(n))
			}
			prevSlice, prevOrd = ks, ko
			if n.lowOrd >= 0 && ks < n.lowSlice {
				t.Fatalf("border %p: key slice %#x below lowkey %#x", n, ks, n.lowSlice)
			}
			if kl := n.keylen[slot].Load(); kl == klLayer {
				sub := ascendToRoot((*nodeHeader)(n.loadLV(slot)))
				checkLayerInvariants(t, sub, depth+1)
			}
		}
		// Doubly-linked list consistency.
		if i > 0 && n.prev.Load() != borders[i-1] {
			t.Fatalf("border %p: prev link broken", n)
		}
		if i > 0 && borders[i-1].next.Load() != n {
			t.Fatalf("border %p: next link broken", borders[i-1])
		}
		if i == 0 && n.lowOrd >= 0 {
			t.Fatalf("leftmost border %p does not have lowkey -inf", n)
		}
		if i > 0 && n.lowOrd < 0 {
			t.Fatalf("non-leftmost border %p has lowkey -inf", n)
		}
	}
}

// collectBorders walks interior structure, checking interior invariants, and
// appends border nodes left to right.
func collectBorders(t *testing.T, h *nodeHeader, parent *interiorNode, out *[]*borderNode) {
	t.Helper()
	v := h.version.Load()
	if isDeleted(v) {
		t.Fatalf("reachable node %p is marked deleted", h)
	}
	if parent != nil && h.parent.Load() != parent {
		t.Fatalf("node %p parent pointer does not match its parent", h)
	}
	if isBorder(v) {
		*out = append(*out, h.border())
		return
	}
	in := h.interior()
	nk := int(in.nkeys.Load())
	if nk < 0 || nk > width {
		t.Fatalf("interior %p: nkeys %d out of range", in, nk)
	}
	var prev uint64
	for i := 0; i < nk; i++ {
		ks := in.keyslice[i].Load()
		if i > 0 && ks <= prev {
			t.Fatalf("interior %p: separators out of order", in)
		}
		prev = ks
	}
	for i := 0; i <= nk; i++ {
		c := in.child[i].Load()
		if c == nil {
			t.Fatalf("interior %p: nil child %d", in, i)
		}
		collectBorders(t, c, in, out)
	}
}

func dumpBorder(n *borderNode) string {
	tr := &Tree{}
	tr.root.Store(&n.h)
	_ = tr
	return "" // placeholder; full dumps via (*Tree).dump in dump_test.go
}

// TestInvariantsAfterMixedOps drives a deterministic mixed workload and
// checks invariants at checkpoints.
func TestInvariantsAfterMixedOps(t *testing.T) {
	tr := New()
	for i := 0; i < 3000; i++ {
		put(tr, keyPattern(i), "v")
		if i%5 == 0 {
			tr.Remove([]byte(keyPattern(i / 2)))
		}
		if i%500 == 499 {
			checkInvariants(t, tr)
			tr.Maintain()
			checkInvariants(t, tr)
		}
	}
	checkInvariants(t, tr)
}

func keyPattern(i int) string {
	switch i % 4 {
	case 0:
		return "short" + string(rune('a'+i%26))
	case 1:
		return "medium-key-0" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	case 2:
		return "a-very-long-shared-prefix-for-layers-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
	default:
		return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
	}
}
