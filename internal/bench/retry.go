package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/workload"
)

// Retry reproduces §4.6.4's retry-rate observation: during a concurrent
// insert workload, retries from the root (caused by observed splits or node
// deletions) are far rarer than local retries (observed inserts) — the
// paper saw fewer than 1 in 10^6 inserts retry from the root, with inserts
// observed ~15x more often than splits.
func Retry(sc Scale) *Table {
	sc = sc.withDefaults()
	workers := 8 // the paper's 8-thread insert test
	t := &Table{
		ID:      "retry",
		Title:   fmt.Sprintf("retry rates under %d-way concurrent inserts, %d keys (§4.6.4)", workers, sc.Keys),
		Headers: []string{"metric", "count", "per op"},
	}
	keysPerWorker := sc.Keys / workers
	keys := make([][][]byte, workers)
	for w := range keys {
		keys[w] = workload.Keys(workload.Decimal(int64(840+w)), keysPerWorker)
	}
	// Half the workers insert; the other half read concurrently, since
	// retries are what *readers* observe when writers split or insert.
	tr := core.New()
	measure(workers, keysPerWorker, func(w, i int) {
		if w%2 == 0 {
			k := keys[w][i]
			tr.Put(k, value.New(k))
		} else {
			tr.Get(keys[w-1][(i*31)%keysPerWorker])
		}
	})
	s := tr.Stats()
	ops := int64(workers * keysPerWorker)
	perOp := func(c int64) string { return fmt.Sprintf("%.2e", float64(c)/float64(ops)) }
	t.Rows = append(t.Rows,
		[]string{"operations", fmt.Sprintf("%d", ops), "1"},
		[]string{"root retries (splits/deletes observed)", fmt.Sprintf("%d", s.RootRetries), perOp(s.RootRetries)},
		[]string{"local retries (inserts observed)", fmt.Sprintf("%d", s.LocalRetries), perOp(s.LocalRetries)},
		[]string{"splits", fmt.Sprintf("%d", s.Splits), perOp(s.Splits)},
		[]string{"layer creations", fmt.Sprintf("%d", s.LayerCreations), perOp(s.LayerCreations)},
	)
	t.Notes = append(t.Notes, "paper: <1 in 1e6 inserts retried from the root; local (insert) retries ~15x more frequent")
	return t
}
