// Readthrough: the store as the fast tier of a two-level hierarchy. A
// backend (here the file backend, wrapped in the timeout/retry/breaker
// decorator stack) is the source of truth; Session.GetOrLoad serves hits
// from the tree and funnels misses through the loader, which coalesces a
// thundering herd of concurrent misses into exactly one backend load per
// key. Evictions spill to the backend through the async write-behind queue,
// and when the backend goes down the store degrades instead of hanging:
// expired-but-resident values are served marked stale (stale-if-error),
// absent keys fail fast once the circuit breaker opens.
//
//	go run ./examples/readthrough
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/kvstore"
	"repro/internal/value"
)

func main() {
	dir, err := os.MkdirTemp("", "readthrough-backend-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The mock backend exposes fault injection; the decorator stack turns
	// repeated failures into an open circuit. A file backend (or anything
	// else implementing backend.Backend) wires up identically.
	mock := backend.NewMock(0)
	be := backend.Wrap(mock, backend.WrapConfig{
		Timeout:         time.Second,
		Retries:         1,
		BreakerFailures: 3,
		BreakerOpenFor:  200 * time.Millisecond,
	})

	store, err := kvstore.Open(kvstore.Config{
		Backend:     be,
		NegativeTTL: time.Second,
		MaxStale:    time.Minute,
		WriteBehind: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	sess := store.Session(0)
	defer sess.Close()

	// --- 1. Read-through: the backend is the source of truth. -------------
	mock.Seed("user:42", backend.EncodeCols([][]byte{[]byte("alice")}))
	v, stale, err := sess.GetOrLoad(context.Background(), []byte("user:42"))
	fmt.Printf("miss -> backend load: value=%q stale=%v err=%v\n", v.Col(0), stale, err)
	v, _, _ = sess.GetOrLoad(context.Background(), []byte("user:42"))
	fmt.Printf("second read is a tree hit: value=%q (backend loads so far: %d)\n",
		v.Col(0), mock.Loads())

	// --- 2. Herd coalescing: 256 concurrent misses, one load. -------------
	mock.Seed("hot", backend.EncodeCols([][]byte{[]byte("popular")}))
	release := mock.Hang() // park the load so the herd actually piles up
	var wg sync.WaitGroup
	for i := 0; i < 256; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := store.Session(0)
			defer s.Close()
			s.GetOrLoad(context.Background(), []byte("hot"))
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the herd park on the flight
	release()
	wg.Wait()
	st := store.LoaderStats()
	fmt.Printf("herd of 256: backend loads for %q = %d, coalesced waiters = %d\n",
		"hot", mock.LoadsFor("hot"), st.HerdCoalesced)

	// --- 3. Outage: fail fast + stale-if-error. ---------------------------
	mock.SetError(errors.New("backend down"))
	for i := 0; i < 4; i++ { // trip the breaker (3 consecutive failures)
		sess.GetOrLoad(context.Background(), []byte("absent"))
	}
	start := time.Now()
	_, _, err = sess.GetOrLoad(context.Background(), []byte("absent2"))
	fmt.Printf("breaker open: miss fails in %s with %v\n",
		time.Since(start).Round(time.Microsecond), err)
	st = store.LoaderStats()
	fmt.Printf("breaker state=%d opens=%d; resident keys still serve: ", st.Backend.BreakerState, st.Backend.BreakerOpens)
	v, _, _ = sess.GetOrLoad(context.Background(), []byte("user:42"))
	fmt.Printf("user:42=%q\n", v.Col(0))

	// --- 4. Recovery: half-open probe heals without a restart. ------------
	mock.SetError(nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := sess.GetOrLoad(context.Background(), []byte("user:43")); err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	st = store.LoaderStats()
	fmt.Printf("backend healed: breaker state=%d, loads=%d, load_errors=%d\n",
		st.Backend.BreakerState, st.Loads, st.LoadErrors)

	// --- 5. Write-behind: store-side changes propagate to the backend. ----
	// Cache-pressure evictions spill values through the same queue; a Remove
	// enqueues a tombstone, so the backend cannot resurrect a deleted key.
	sess.Put([]byte("user:42"), []value.ColPut{{Col: 0, Data: []byte("alice-v2")}})
	sess.Remove([]byte("user:42"))
	store.DrainWriteBehind(time.Second) // queue also drains continuously and at Close
	_, inBackend := mock.Get("user:42")
	fmt.Printf("after Remove + drain: backend still has user:42? %v (queue depth %d, drops %d)\n",
		inBackend, store.LoaderStats().WriteBehindDepth, store.LoaderStats().WriteBehindDrops)
}
