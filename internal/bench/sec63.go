package bench

import (
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/baseline/binarytree"
	"repro/internal/kvstore"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/workload"
)

// binStore wraps the "+IntCmp" binary tree with the same per-worker logging
// infrastructure as Masstree, so §6.3's comparison isolates tree design
// inside an otherwise identical system.
type binStore struct {
	tree  *binarytree.Tree
	logs  *wal.Set
	clock atomic.Uint64
}

func (b *binStore) put(worker int, k []byte, v *value.Value) {
	ver := b.clock.Add(1)
	b.tree.Put(k, v)
	if b.logs != nil {
		b.logs.Writer(worker).Append(&wal.Record{
			TS: ver, Op: wal.OpPut, Key: k,
			Puts: []value.ColPut{{Col: 0, Data: v.Bytes()}},
		})
	}
}

// Sec63 reproduces §6.3 ("System relevance of tree design"): with logging
// on, Masstree versus the fastest binary tree from Figure 8. The paper
// measured 1.90x (gets) and 1.53x (puts) on 140M keys; at laptop scale the
// trees are closer (shallower trees shrink the DRAM-latency gap), and the
// point is that the win survives the full system's logging overheads.
func Sec63(sc Scale) *Table {
	sc = sc.withDefaults()
	t := &Table{
		ID:      "sec63",
		Title:   fmt.Sprintf("tree design inside the full system (logging on), %d keys (§6.3)", sc.Keys),
		Headers: []string{"system", "get Mreq/s", "put Mreq/s"},
		Notes: []string{
			"both stores run per-worker group-commit logging; paper adds network I/O, here covered separately by the server tests",
		},
	}

	keysPerWorker := sc.Keys / sc.Workers
	keys := make([][][]byte, sc.Workers)
	for w := range keys {
		keys[w] = workload.Keys(workload.Decimal(int64(800+w)), keysPerWorker)
	}

	// Masstree with logging.
	mtDir, err := os.MkdirTemp("", "sec63-mt-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(mtDir)
	st, err := kvstore.Open(kvstore.Config{Dir: mtDir, Workers: sc.Workers})
	if err != nil {
		panic(err)
	}
	defer st.Close()
	mtPut := measure(sc.Workers, keysPerWorker, func(w, i int) {
		k := keys[w][i]
		st.PutSimple(w, k, k)
	})
	mtGet := measure(sc.Workers, sc.Ops/sc.Workers, func(w, i int) {
		st.Get(keys[w][(i*61)%keysPerWorker], nil)
	})
	t.Rows = append(t.Rows, []string{"Masstree", mops(mtGet), mops(mtPut)})

	// +IntCmp binary tree with the same logging.
	binDir, err := os.MkdirTemp("", "sec63-bin-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(binDir)
	logs, err := wal.OpenSet(binDir, sc.Workers, 1, false, 0)
	if err != nil {
		panic(err)
	}
	defer logs.Close()
	bs := &binStore{tree: binarytree.New(binarytree.WithIntCmp(), binarytree.WithArena()), logs: logs}
	binPut := measure(sc.Workers, keysPerWorker, func(w, i int) {
		k := keys[w][i]
		bs.put(w, k, value.New(k))
	})
	binGet := measure(sc.Workers, sc.Ops/sc.Workers, func(w, i int) {
		bs.tree.Get(keys[w][(i*61)%keysPerWorker])
	})
	t.Rows = append(t.Rows, []string{"+IntCmp binary", mops(binGet), mops(binPut)})
	t.Rows = append(t.Rows, []string{"Masstree/+IntCmp", ratio(mtGet, binGet), ratio(mtPut, binPut)})
	return t
}
