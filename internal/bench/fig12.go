package bench

// Fig12 reproduces Figure 12, the table of tested servers and client
// libraries. In this reproduction the comparators are in-process
// architectural stand-ins (internal/othersys), so the table reports each
// stand-in's modeled configuration: shard/executor counts, client batching,
// and range-query support — the properties §7's analysis attributes the
// results to.
func Fig12(Scale) *Table {
	return &Table{
		ID:      "fig12",
		Title:   "comparator configurations (Figure 12, adapted to the stand-ins)",
		Headers: []string{"server", "models", "executors", "batched get", "batched put", "range query", "persistence"},
		Rows: [][]string{
			{"Masstree", "this work", "shared tree, N workers", "yes", "yes", "yes", "logs + checkpoints"},
			{"mongodb-like", "MongoDB 2.0", "8 shards, global RW lock", "no", "no", "yes", "none (paper: in-memory fs)"},
			{"voltdb-like", "VoltDB 2.0", "16 single-threaded sites", "yes", "yes", "yes (multi-partition)", "none (replication off)"},
			{"redis-like", "Redis 2.4.5", "16 single-threaded shards", "yes", "yes", "no", "append-only log"},
			{"memcached-like", "memcached 1.4.8", "16 single-threaded shards", "yes", "no", "no", "none"},
		},
		Notes: []string{
			"see internal/othersys package documentation and DESIGN.md substitution #2",
		},
	}
}
