package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
)

// LogFile describes one on-disk log file.
type LogFile struct {
	Path   string
	Worker int
	Gen    uint64
}

var logNameRE = regexp.MustCompile(`^log-(\d{4})\.(\d{6})\.wal$`)

// ListLogFiles enumerates the log files in dir.
func ListLogFiles(dir string) ([]LogFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []LogFile
	for _, e := range ents {
		m := logNameRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		worker, _ := strconv.Atoi(m[1])
		gen, _ := strconv.ParseUint(m[2], 10, 64)
		out = append(out, LogFile{Path: filepath.Join(dir, e.Name()), Worker: worker, Gen: gen})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Gen < out[j].Gen
	})
	return out, nil
}

// RecoveryResult is the outcome of scanning a log directory.
type RecoveryResult struct {
	// Records holds all surviving records (timestamp <= Cutoff), grouped by
	// nothing in particular; use Replay to apply them in order.
	Records []Record
	// Cutoff is t = min over logs of the log's maximum durable timestamp
	// (§5). Records with larger timestamps were dropped: some worker may not
	// have made them durable, so the highest consistent prefix ends at t.
	// The maximum (not the final record's timestamp) is used because
	// sessions sharing a worker log may interleave appends slightly out of
	// timestamp order, and per-worker clocks only order records per key.
	Cutoff uint64
	// MaxTS is the largest timestamp seen anywhere (before cutoff
	// filtering); the store's clock must resume above it.
	MaxTS uint64
	// MaxGen is the largest log generation present.
	MaxGen uint64
}

// RecoverDir reads every log file in dir and computes the recovery cutoff.
//
// Per the paper, t = min over logs L of max timestamp in L, so that only
// updates every log had made durable (or that precede such updates) are
// replayed. A worker whose current-generation log is empty contributes no
// constraint: it durably logged nothing, so it cannot have acknowledged
// anything that others would depend on.
func RecoverDir(dir string) (*RecoveryResult, error) {
	files, err := ListLogFiles(dir)
	if err != nil {
		return nil, err
	}
	res := &RecoveryResult{Cutoff: ^uint64(0)}
	// Concatenate each worker's generations in order, then treat the result
	// as that worker's single log.
	perWorker := map[int][]Record{}
	for _, lf := range files {
		if lf.Gen > res.MaxGen {
			res.MaxGen = lf.Gen
		}
		b, err := os.ReadFile(lf.Path)
		if err != nil {
			return nil, err
		}
		recs, err := parseLog(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lf.Path, err)
		}
		perWorker[lf.Worker] = append(perWorker[lf.Worker], recs...)
	}
	constrained := false
	for _, recs := range perWorker {
		if len(recs) == 0 {
			continue
		}
		logMax := uint64(0)
		for _, r := range recs {
			if r.TS > logMax {
				logMax = r.TS
			}
		}
		if logMax > res.MaxTS {
			res.MaxTS = logMax
		}
		if logMax < res.Cutoff {
			res.Cutoff = logMax
		}
		constrained = true
	}
	if !constrained {
		res.Cutoff = 0
	}
	for _, recs := range perWorker {
		for _, r := range recs {
			if r.Op != OpMark && r.TS <= res.Cutoff {
				res.Records = append(res.Records, r)
			}
		}
	}
	return res, nil
}

// Mark appends a timestamp heartbeat to every log (see OpMark).
func (s *Set) Mark(ts uint64) {
	for _, w := range s.writers {
		w.Append(&Record{TS: ts, Op: OpMark})
	}
}

// Replay applies the surviving records through apply, in increasing version
// order per key, partitioned across parallel goroutines by key so a value's
// updates stay ordered (§5: "plays back the logged updates in parallel,
// taking care to apply a value's updates in increasing order by version").
//
// apply receives records for one key in strictly increasing TS order.
func (r *RecoveryResult) Replay(parallelism int, apply func(Record)) {
	if parallelism < 1 {
		parallelism = 1
	}
	// Group records by key.
	byKey := map[string][]Record{}
	for _, rec := range r.Records {
		byKey[string(rec.Key)] = append(byKey[string(rec.Key)], rec)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		sort.Slice(byKey[k], func(i, j int) bool { return byKey[k][i].TS < byKey[k][j].TS })
		keys = append(keys, k)
	}
	var wg sync.WaitGroup
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(keys); i += parallelism {
				for _, rec := range byKey[keys[i]] {
					apply(rec)
				}
			}
		}(p)
	}
	wg.Wait()
}
