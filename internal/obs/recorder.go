package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind tags a flight-recorder event. The recorder traces *internal*
// transitions — the decisions a counter can only count — so the set below
// names the moments a post-mortem wants: why the breaker opened, which keys
// eviction chose, how a checkpoint committed, where replay rolled a chain
// back, when a cluster node's health changed.
type Kind uint8

const (
	EvNone Kind = iota

	// Backend tier.
	EvBreakerOpen // arg1 = consecutive failures observed at the trip
	EvBreakerHeal // arg1 = breaker state healed into (backend.Breaker*)
	EvLoadError   // arg1 = key hash

	// Cache mode.
	EvEvict  // arg1 = key hash, arg2 = value bytes freed
	EvExpire // arg1 = keys expired this sweep batch

	// WAL.
	EvFlushRetry // arg1 = worker, arg2 = backoff ns before the retry
	EvFlushError // arg1 = worker, arg2 = consecutive failure count

	// Checkpoint.
	EvCkptBegin  // arg1 = checkpoint timestamp
	EvCkptCommit // arg1 = checkpoint timestamp, arg2 = keys written

	// Recovery.
	EvRecoveryPhase // arg1 = RecPhase* code, arg2 = phase duration ns
	EvChainBreak    // arg1 = key hash rolled back during replay
	EvLogMissing    // arg1 = how many expected log files vanished

	// Cluster health.
	EvNodeDown    // arg1 = node index
	EvNodeProbing // arg1 = node index
	EvNodeUp      // arg1 = node index

	numKinds
)

// Recovery phase codes for EvRecoveryPhase's arg1.
const (
	RecPhaseCheckpoint = 1 // checkpoint parts loaded
	RecPhaseLogParse   = 2 // log files parsed
	RecPhaseReplay     = 3 // records replayed into the tree
)

var kindNames = [numKinds]string{
	EvNone:          "none",
	EvBreakerOpen:   "breaker_open",
	EvBreakerHeal:   "breaker_heal",
	EvLoadError:     "load_error",
	EvEvict:         "evict",
	EvExpire:        "expire",
	EvFlushRetry:    "flush_retry",
	EvFlushError:    "flush_error",
	EvCkptBegin:     "ckpt_begin",
	EvCkptCommit:    "ckpt_commit",
	EvRecoveryPhase: "recovery_phase",
	EvChainBreak:    "chain_break",
	EvLogMissing:    "log_missing",
	EvNodeDown:      "node_down",
	EvNodeProbing:   "node_probing",
	EvNodeUp:        "node_up",
}

// String names the event kind for dumps.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one fixed-size flight-recorder entry. Arg1/Arg2 are
// kind-specific (see the Kind constants); TS is nanoseconds since the Unix
// epoch.
type Event struct {
	TS     int64
	Seq    uint64
	Arg1   uint64
	Arg2   uint64
	Worker int32
	Kind   Kind
}

// recRing is one worker's event ring. A plain mutex, not atomics: every
// event here marks a cold transition (a breaker trip, an eviction decision,
// a checkpoint step), so the lock is uncontended in practice and buys
// race-free dumps for free. The record path still allocates nothing.
type recRing struct {
	mu  sync.Mutex
	seq uint64
	ev  []Event
	_   [24]byte
}

// Recorder is a fixed-size per-worker ring of trace events. Writers append
// to their own worker's ring (older events overwrite in FIFO order); Dump
// merges the rings into one timeline. A nil *Recorder is a valid no-op.
type Recorder struct {
	rings []recRing
}

// DefaultRingSize is events retained per worker ring.
const DefaultRingSize = 512

// NewRecorder builds a recorder with one ring of size events per worker.
func NewRecorder(workers, size int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	if size < 1 {
		size = DefaultRingSize
	}
	r := &Recorder{rings: make([]recRing, workers)}
	for i := range r.rings {
		r.rings[i].ev = make([]Event, size)
	}
	return r
}

// Record traces one event into the worker's ring. Nil-safe no-op.
//
//masstree:noalloc
func (r *Recorder) Record(worker int, k Kind, arg1, arg2 uint64) {
	if r == nil {
		return
	}
	ring := &r.rings[uint(worker)%uint(len(r.rings))]
	now := time.Now().UnixNano()
	ring.mu.Lock()
	ring.ev[ring.seq%uint64(len(ring.ev))] = Event{
		TS:     now,
		Seq:    ring.seq,
		Arg1:   arg1,
		Arg2:   arg2,
		Worker: int32(uint(worker) % uint(len(r.rings))),
		Kind:   k,
	}
	ring.seq++
	ring.mu.Unlock()
}

// Events snapshots every retained event across all rings, oldest first
// (merged by timestamp, per-ring sequence as the tiebreak). Nil-safe.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.rings {
		ring := &r.rings[i]
		ring.mu.Lock()
		n := ring.seq
		size := uint64(len(ring.ev))
		start := uint64(0)
		if n > size {
			start = n - size
		}
		for s := start; s < n; s++ {
			out = append(out, ring.ev[s%size])
		}
		ring.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteTo renders the merged timeline as text, one event per line:
//
//	2026-08-07T01:02:03.000000004Z w3 evict arg1=deadbeef arg2=128
//
// It reports the byte count written and the first write error.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range r.Events() {
		n, err := fmt.Fprintf(w, "%s w%d %-14s arg1=%x arg2=%d\n",
			time.Unix(0, e.TS).UTC().Format("2006-01-02T15:04:05.000000000Z"),
			e.Worker, e.Kind.String(), e.Arg1, e.Arg2)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// DumpString renders the merged timeline as text for test-failure logs.
func (r *Recorder) DumpString() string {
	if r == nil {
		return "(flight recorder disabled)\n"
	}
	var b strings.Builder
	r.WriteTo(&b)
	if b.Len() == 0 {
		return "(flight recorder empty)\n"
	}
	return b.String()
}

// KeyHash hashes a key for event args — FNV-1a, cheap and alloc-free. It
// deliberately matches no tree or ring hash: recorder hashes are for
// correlating events in a dump, nothing else.
//
//masstree:noalloc
func KeyHash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range key {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
