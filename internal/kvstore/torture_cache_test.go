package kvstore

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/vfs"
)

// Cache-mode crash torture: the same crash-at-every-boundary harness as
// torture_test.go, with the maintenance loop's eviction and TTL sweep
// running (invoked deterministically) between write phases. The model
// extends the base invariants:
//
//   - Evictions and expirations are clean drops (no WAL record), so a
//     dropped key may legally be ABSENT after recovery (its checkpoint
//     omits it and pre-checkpoint records do not replay) or PRESENT at an
//     applied state (its log record replayed) — but never at a state that
//     mixes versions and data, and never below the acknowledged state when
//     it is present.
//   - A key never dropped keeps the full guarantee: crash during eviction
//     must not lose any acked write of a non-evicted key.
//
// The observation point is the live store right after each maintenance
// pass: any tracked key whose last applied state is not a tombstone and
// that no longer appears in the raw tree was dropped by the pass.

// tortureCacheMaxBytes keeps ~half of the phase-1 population resident, so
// every maintenance pass actually evicts.
const tortureCacheMaxBytes = 8 << 10

// observeDrops marks histories whose keys the maintenance pass just
// dropped (evicted or swept). The raw tree is inspected so lazy expiry
// cannot mask a physically-present key.
func (tt *torture) observeDrops() {
	for k, h := range tt.hist {
		if len(h.states) == 0 || h.states[len(h.states)-1].tomb || h.dropped {
			continue
		}
		if _, ok := tt.s.tree.Get([]byte(k)); !ok {
			h.dropped = true
		}
	}
}

// putTTL applies a TTL put and records the resulting state from its inputs
// (an already-expired put is invisible to Get, so reading back would fail).
func (tt *torture) putTTL(key, val string, expiresAt uint64) {
	h := tt.histOf(key)
	ver := tt.s.PutTTL(h.worker, []byte(key), []value.ColPut{{Col: 0, Data: []byte(val)}}, expiresAt)
	h.states = append(h.states, kvState{ver: ver, data: val})
	h.dropped = false
}

// cacheWorkload drives puts, TTL puts, removes, checkpoints, and explicit
// maintenance passes (eviction + sweep) with acknowledgment points between
// them, under a byte budget small enough that every pass evicts.
func (tt *torture) cacheWorkload() error {
	now := uint64(time.Now().UnixNano())
	filler := strings.Repeat("0123456789abcdef", 16) // ~256 B values
	val := func(tag string, i int) string {
		return fmt.Sprintf("%s-%02d-%s", tag, i, filler)
	}
	// Phase 1: populate to ~2x the budget, ack, evict, checkpoint. The
	// checkpoint omits everything the pass evicted.
	for i := 0; i < 40; i++ {
		tt.putSimple(fmt.Sprintf("c%02d", i), val("r1", i))
	}
	if err := tt.ack(); err != nil {
		return err
	}
	tt.s.cacheMaintain()
	tt.observeDrops()
	if err := tt.ckpt(); err != nil {
		return err
	}
	// Phase 2: TTL writes — live ones and an already-lapsed one — then a
	// maintenance pass that sweeps the lapsed key and keeps evicting.
	for i := 0; i < 6; i++ {
		tt.putTTL(fmt.Sprintf("e%02d", i), val("r2", i), now+uint64(time.Hour))
	}
	tt.putTTL("x00", val("r2x", 0), now-uint64(time.Second))
	if err := tt.ack(); err != nil {
		return err
	}
	tt.s.cacheMaintain()
	tt.observeDrops()
	// Phase 3: removes of (possibly evicted) keys, fresh writes past the
	// budget, another pass, a second checkpoint, and a flush-acked tail.
	tt.remove("c03")
	tt.remove("c27")
	for i := 0; i < 16; i++ {
		tt.putSimple(fmt.Sprintf("d%02d", i), val("r3", i))
	}
	tt.s.cacheMaintain()
	tt.observeDrops()
	if err := tt.ckpt(); err != nil {
		return err
	}
	for i := 0; i < 6; i++ {
		tt.putSimple(fmt.Sprintf("t%02d", i), val("r4", i))
	}
	// A multi-column value, deterministically evicted, then partially
	// re-put: the insert record (wal.OpInsert) must keep replay from
	// merging the dropped value's other column back in — the exact-state
	// check catches any mixing at every crash boundary.
	tt.put("mc", value.ColPut{Col: 0, Data: []byte("mc-c0")}, value.ColPut{Col: 1, Data: []byte("mc-c1")})
	if !tt.s.evictKey([]byte("mc")) {
		return fmt.Errorf("deterministic evict of mc failed")
	}
	tt.histOf("mc").dropped = true
	tt.putSimple("mc", "mc-fresh-col0-only")
	if err := tt.ack(); err != nil {
		return err
	}
	// Phase 4: applied but never acknowledged.
	tt.putSimple("pending-cache", val("r5", 0))
	return nil
}

// verifyCacheMode re-opens one crash image in cache mode and checks the
// cache-specific guarantees: the byte bound holds before Open returns, and
// every surviving key carries an exact applied state (recovery-time
// eviction makes absence unfalsifiable, so only presence is checked).
func (tt *torture) verifyCacheMode(img *vfs.MemFS, label string) {
	t := tt.t
	r, err := Open(Config{
		Dir: tortureDir, Workers: tt.workers, FS: img, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1, CheckpointParts: tt.parts,
		MaxBytes: tortureCacheMaxBytes,
	})
	if err != nil {
		t.Fatalf("%s: cache-mode recovery failed: %v", label, err)
	}
	defer r.Close()
	if live := r.CacheStats().BytesLive; live > tortureCacheMaxBytes {
		t.Fatalf("%s: recovered bytes_live %d exceeds the %d bound", label, live, tortureCacheMaxBytes)
	}
	r.Tree().Scan(nil, func(k []byte, v *value.Value) bool {
		h := tt.hist[string(k)]
		if h == nil {
			t.Fatalf("%s: recovered key %q that was never written", label, k)
		}
		for _, st := range h.states {
			if !st.tomb && st.ver == v.Version() {
				if got := joinCols(v.Cols()); got != st.data {
					t.Fatalf("%s: key %q version %d recovered %q, applied %q", label, k, v.Version(), got, st.data)
				}
				return true
			}
		}
		t.Fatalf("%s: key %q recovered at version %d, matching no applied state", label, k, v.Version())
		return false
	})
}

// runTortureCache executes the cache workload with a crash armed at
// boundary crashAt (0 = disarmed) and verifies every crash image twice:
// once with the full model (no recovery-time eviction), once in cache mode
// (bound enforcement + exact states).
func runTortureCache(t *testing.T, crashAt int) (ops int, crashed bool) {
	mem := vfs.NewMemFS()
	fault := vfs.NewFault(mem)
	fault.CrashAt(crashAt)
	tt := &torture{t: t, mem: mem, fault: fault, hist: map[string]*keyHist{}, workers: 1, parts: 1}
	s, err := Open(Config{
		Dir: tortureDir, Workers: 1, FS: fault, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1, CheckpointParts: 1,
		MaxBytes: tortureCacheMaxBytes,
	})
	if err != nil {
		if !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("crashAt=%d: open: %v", crashAt, err)
		}
	} else {
		tt.s = s
		if werr := tt.cacheWorkload(); werr != nil && !errors.Is(werr, vfs.ErrCrashed) {
			t.Fatalf("crashAt=%d: workload: %v", crashAt, werr)
		}
		if crashAt == 0 && !fault.Crashed() {
			// The disarmed run must actually exercise the policy, or the
			// armed runs torture nothing.
			if st := s.CacheStats(); st.Evictions == 0 || st.Expirations == 0 {
				t.Fatalf("cache workload under-exercised the policy: %+v", st)
			}
		}
		if cerr := s.Close(); cerr == nil && !fault.Crashed() {
			tt.promote()
		}
	}
	ops, crashed = fault.Ops(), fault.Crashed()
	for _, img := range crashImages {
		c := mem.Clone()
		c.Crash(img.keep)
		tt.verify(c, fmt.Sprintf("cache/crashAt=%d/%s", crashAt, img.name))
		c2 := mem.Clone()
		c2.Crash(img.keep)
		tt.verifyCacheMode(c2, fmt.Sprintf("cachemode/crashAt=%d/%s", crashAt, img.name))
	}
	return ops, crashed
}

// TestCrashTortureEviction enumerates every filesystem boundary of the
// cache-mode workload — eviction and sweep passes interleaved with acks and
// checkpoints — and crashes at each one: no acked non-dropped write is ever
// lost, dropped keys recover only to exact applied states, and the bound
// re-establishes on recovery.
func TestCrashTortureEviction(t *testing.T) {
	total, crashed := runTortureCache(t, 0)
	if crashed {
		t.Fatal("disarmed run crashed")
	}
	// The disarmed run must actually have exercised the policy, or this
	// whole test tortures nothing.
	t.Logf("cache workload executes %d crash boundaries x %d images", total, len(crashImages))
	for i := 1; i <= total; i++ {
		runTortureCache(t, i)
	}
}
